package stats

import (
	"math"
	"testing"

	"mapsynth/internal/table"
)

// corpusOf builds a corpus of single-column tables, one per value list.
func corpusOf(cols ...[]string) []*table.Table {
	var out []*table.Table
	for i, c := range cols {
		out = append(out, &table.Table{
			ID:      i,
			Columns: []table.Column{{Name: "c", Values: c}},
		})
	}
	return out
}

func TestIndexCounts(t *testing.T) {
	idx := BuildIndex(corpusOf(
		[]string{"USA", "Canada", "Mexico"},
		[]string{"usa", "canada"}, // normalization folds case
		[]string{"Canada", "Japan"},
		[]string{"usa", "usa", "USA"}, // duplicates within a column count once
	))
	if idx.NumColumns() != 4 {
		t.Fatalf("NumColumns = %d, want 4", idx.NumColumns())
	}
	if got := idx.DocFreq("usa"); got != 3 {
		t.Errorf("DocFreq(usa) = %d, want 3", got)
	}
	if got := idx.DocFreq("canada"); got != 3 {
		t.Errorf("DocFreq(canada) = %d, want 3", got)
	}
	if got := idx.CoFreq("usa", "canada"); got != 2 {
		t.Errorf("CoFreq(usa, canada) = %d, want 2", got)
	}
	if got := idx.CoFreq("usa", "japan"); got != 0 {
		t.Errorf("CoFreq(usa, japan) = %d, want 0", got)
	}
	if got := idx.DocFreq("absent"); got != 0 {
		t.Errorf("DocFreq(absent) = %d, want 0", got)
	}
}

func TestCoFreqSymmetric(t *testing.T) {
	idx := BuildIndex(corpusOf(
		[]string{"a", "b", "c"},
		[]string{"a", "b"},
		[]string{"b", "c"},
		[]string{"a", "c"},
	))
	for _, u := range []string{"a", "b", "c"} {
		for _, v := range []string{"a", "b", "c"} {
			if idx.CoFreq(u, v) != idx.CoFreq(v, u) {
				t.Errorf("CoFreq(%s,%s) not symmetric", u, v)
			}
		}
	}
}

func TestPMIExample4(t *testing.T) {
	// Reproduce the paper's Example 4 arithmetic directly: N = 100M,
	// |C(u)| = 1000, |C(v)| = 500, co = 300 => PMI = 4.78 (natural log base
	// gives ln(300e8/(1000*500)) = ln(60000) ≈ 11.0; the paper's 4.78 uses
	// log10: log10(60000) = 4.778). Verify our natural-log PMI against the
	// same ratio.
	n := 100_000_000.0
	pu, pv, puv := 1000/n, 500/n, 300/n
	want := math.Log(puv / (pu * pv))
	if math.Abs(want-math.Log(60000)) > 1e-9 {
		t.Fatalf("example arithmetic wrong: %v", want)
	}
	// And in log10 terms it matches the paper's 4.78.
	if got := math.Log10(60000); math.Abs(got-4.778) > 0.001 {
		t.Fatalf("paper example mismatch: %v", got)
	}
}

func TestNPMIRange(t *testing.T) {
	idx := BuildIndex(corpusOf(
		[]string{"a", "b"},
		[]string{"a", "b"},
		[]string{"a", "c"},
		[]string{"d"},
		[]string{"e", "f"},
	))
	pairs := [][2]string{{"a", "b"}, {"a", "c"}, {"a", "d"}, {"e", "f"}, {"x", "y"}}
	for _, p := range pairs {
		v := idx.NPMI(p[0], p[1])
		if v < -1-1e-9 || v > 1+1e-9 {
			t.Errorf("NPMI(%s,%s) = %v out of [-1, 1]", p[0], p[1], v)
		}
	}
	// Values that never co-occur score -1.
	if got := idx.NPMI("a", "d"); got != -1 {
		t.Errorf("NPMI(a, d) = %v, want -1", got)
	}
	// Frequent co-occurrence beats rare co-occurrence.
	if idx.NPMI("a", "b") <= idx.NPMI("a", "c") {
		t.Errorf("NPMI ordering wrong: ab=%v ac=%v", idx.NPMI("a", "b"), idx.NPMI("a", "c"))
	}
}

func TestColumnCoherenceSeparatesMixedColumns(t *testing.T) {
	// Corpus: country columns co-occur repeatedly; a mixed column blends
	// values that never co-occur elsewhere.
	countries := []string{"usa", "canada", "mexico", "brazil"}
	animals := []string{"cat", "dog", "bird", "fish"}
	var cols [][]string
	for i := 0; i < 6; i++ {
		cols = append(cols, countries, animals)
	}
	mixed := []string{"usa", "dog", "brazil", "bird"}
	cols = append(cols, mixed)
	idx := BuildIndex(corpusOf(cols...))

	coherent := idx.ColumnCoherence(countries)
	incoherent := idx.ColumnCoherence(mixed)
	if coherent <= 0.5 {
		t.Errorf("country column coherence = %v, want > 0.5", coherent)
	}
	if incoherent >= 0 {
		t.Errorf("mixed column coherence = %v, want < 0", incoherent)
	}
}

func TestColumnCoherenceNeutralCases(t *testing.T) {
	idx := BuildIndex(corpusOf([]string{"a", "b"}))
	// Single distinct value: vacuously coherent.
	if got := idx.ColumnCoherence([]string{"x", "x"}); got != 1 {
		t.Errorf("single-value column = %v, want 1", got)
	}
	// Values unseen outside the scored column: neutral, not incoherent.
	if got := idx.ColumnCoherence([]string{"a", "b"}); got != 0 {
		t.Errorf("no-evidence column = %v, want 0 (neutral)", got)
	}
}

func TestColumnCoherenceSampling(t *testing.T) {
	// Columns longer than MaxCoherenceSample are sampled, not quadratic.
	vals := make([]string, 500)
	for i := range vals {
		vals[i] = "v" + string(rune('a'+i%26)) + string(rune('a'+(i/26)%26))
	}
	idx := BuildIndex(corpusOf(vals, vals))
	_ = idx.ColumnCoherence(vals) // must terminate quickly; value unchecked
}

func TestAppendEquivalence(t *testing.T) {
	all := corpusOf(
		[]string{"USA", "Canada", "Mexico"},
		[]string{"usa", "canada"},
		[]string{"Canada", "Japan"},
		[]string{"usa", "usa", "USA"},
		[]string{"Japan", "Korea", ""},
		[]string{"korea", "mexico"},
	)
	for split := 0; split <= len(all); split++ {
		inc := BuildIndex(all[:split])
		inc.Append(all[split:])
		full := BuildIndex(all)
		if inc.NumColumns() != full.NumColumns() {
			t.Fatalf("split %d: NumColumns %d vs %d", split, inc.NumColumns(), full.NumColumns())
		}
		for _, u := range []string{"usa", "canada", "mexico", "japan", "korea", "absent"} {
			if inc.DocFreq(u) != full.DocFreq(u) {
				t.Fatalf("split %d: DocFreq(%s) %d vs %d", split, u, inc.DocFreq(u), full.DocFreq(u))
			}
			for _, v := range []string{"usa", "canada", "mexico", "japan", "korea"} {
				if inc.CoFreq(u, v) != full.CoFreq(u, v) {
					t.Fatalf("split %d: CoFreq(%s,%s) %d vs %d", split, u, v, inc.CoFreq(u, v), full.CoFreq(u, v))
				}
				in, fn := inc.NPMI(u, v), full.NPMI(u, v)
				if in != fn && !(math.IsNaN(in) && math.IsNaN(fn)) {
					t.Fatalf("split %d: NPMI(%s,%s) %v vs %v", split, u, v, in, fn)
				}
			}
		}
	}
}
