// Package stats computes corpus co-occurrence statistics used for column
// coherence filtering (Section 3.1 of the paper).
//
// The coherence of two values u, v is their Normalized Pointwise Mutual
// Information over column co-occurrence in the corpus:
//
//	PMI(u,v)  = log( p(u,v) / (p(u)·p(v)) )
//	NPMI(u,v) = PMI(u,v) / (-log p(u,v))            ∈ [-1, 1]
//
// where p(u) = |C(u)|/N, p(v) = |C(v)|/N, p(u,v) = |C(u)∩C(v)|/N, C(u) is the
// set of corpus columns containing u and N the total number of columns. A
// column's coherence S(C) is the average pairwise NPMI of its values
// (Equation 2); incoherent columns (mixed concepts, extraction glitches) are
// filtered before candidate extraction.
package stats

import (
	"math"
	"sort"

	"mapsynth/internal/table"
	"mapsynth/internal/textnorm"
)

// CooccurrenceIndex maps each normalized value to the set of corpus columns
// containing it, enabling PMI computation. Column identity is a dense integer
// assigned during Build.
type CooccurrenceIndex struct {
	// columns[v] lists the column IDs containing normalized value v, sorted
	// ascending without duplicates.
	columns map[string][]int32
	// n is the total number of columns indexed.
	n int
}

// BuildIndex scans a corpus and indexes every column of every table. Values
// are normalized before indexing; empty normalized values are skipped.
func BuildIndex(tables []*table.Table) *CooccurrenceIndex {
	idx := &CooccurrenceIndex{columns: make(map[string][]int32)}
	var colID int32
	for _, t := range tables {
		for ci := range t.Columns {
			c := &t.Columns[ci]
			seen := make(map[string]struct{}, len(c.Values))
			for _, v := range c.Values {
				nv := textnorm.Normalize(v)
				if nv == "" {
					continue
				}
				if _, ok := seen[nv]; ok {
					continue
				}
				seen[nv] = struct{}{}
				idx.columns[nv] = append(idx.columns[nv], colID)
			}
			colID++
		}
	}
	idx.n = int(colID)
	// Posting lists are appended in increasing column ID, so they are
	// already sorted and duplicate-free.
	return idx
}

// Append indexes additional tables in place, continuing the dense column ID
// sequence where the previous build stopped. Because column IDs are assigned
// in table order and posting lists are appended in increasing ID, the result
// is exactly the index BuildIndex would produce over the concatenated corpus
// — the identity the incremental pipeline relies on. Appending re-weights
// every NPMI (N grows), which is why the incremental path re-runs extraction
// globally while reusing this index.
func (x *CooccurrenceIndex) Append(tables []*table.Table) {
	colID := int32(x.n)
	for _, t := range tables {
		for ci := range t.Columns {
			c := &t.Columns[ci]
			seen := make(map[string]struct{}, len(c.Values))
			for _, v := range c.Values {
				nv := textnorm.Normalize(v)
				if nv == "" {
					continue
				}
				if _, ok := seen[nv]; ok {
					continue
				}
				seen[nv] = struct{}{}
				x.columns[nv] = append(x.columns[nv], colID)
			}
			colID++
		}
	}
	x.n = int(colID)
}

// NumColumns returns N, the total number of columns indexed.
func (x *CooccurrenceIndex) NumColumns() int { return x.n }

// DocFreq returns |C(v)| for a normalized value v: the number of distinct
// columns containing it.
func (x *CooccurrenceIndex) DocFreq(v string) int { return len(x.columns[v]) }

// CoFreq returns |C(u) ∩ C(v)|: the number of columns containing both
// normalized values.
func (x *CooccurrenceIndex) CoFreq(u, v string) int {
	a, b := x.columns[u], x.columns[v]
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	if len(a) > len(b) {
		a, b = b, a
	}
	// a is shorter. Galloping intersection keeps this cheap for skewed lists.
	count := 0
	lo := 0
	for _, id := range a {
		i := lo + sort.Search(len(b)-lo, func(k int) bool { return b[lo+k] >= id })
		if i < len(b) && b[i] == id {
			count++
			lo = i + 1
		} else {
			lo = i
		}
		if lo >= len(b) {
			break
		}
	}
	return count
}

// PMI returns the pointwise mutual information of two normalized values, or
// negative infinity if they never co-occur or either is unseen.
func (x *CooccurrenceIndex) PMI(u, v string) float64 {
	co := x.CoFreq(u, v)
	if co == 0 || x.n == 0 {
		return math.Inf(-1)
	}
	pu := float64(x.DocFreq(u)) / float64(x.n)
	pv := float64(x.DocFreq(v)) / float64(x.n)
	puv := float64(co) / float64(x.n)
	return math.Log(puv / (pu * pv))
}

// NPMI returns the normalized PMI of two normalized values in [-1, 1].
// Values that never co-occur score -1. Identical values with non-zero
// frequency score their self-association (1 for values that always co-occur
// with themselves, which is definitionally true).
func (x *CooccurrenceIndex) NPMI(u, v string) float64 {
	co := x.CoFreq(u, v)
	if co == 0 || x.n == 0 {
		return -1
	}
	puv := float64(co) / float64(x.n)
	if puv >= 1 {
		return 1
	}
	pmi := x.PMI(u, v)
	return pmi / (-math.Log(puv))
}
