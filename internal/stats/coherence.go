package stats

import (
	"math"

	"mapsynth/internal/textnorm"
)

// MaxCoherenceSample bounds the number of distinct values sampled per column
// when computing coherence; all-pairs NPMI over very long columns would be
// quadratic. Sampling the first k distinct values preserves the signal
// because incoherence (mixed concepts) shows up in any sizeable sample.
const MaxCoherenceSample = 30

// ColumnCoherence computes S(C) (Equation 2): the average pairwise NPMI over
// the column's distinct normalized values. Columns with fewer than two
// distinct values are vacuously coherent and score 1. For columns with more
// than MaxCoherenceSample distinct values, the first MaxCoherenceSample in
// order of appearance are used.
//
// Because the scored column is itself part of the index, each value pair's
// co-occurrence count is discounted by one (and each value's document
// frequency likewise): the question the filter asks is whether the values
// co-occur anywhere *else* in the corpus. Without the discount, a column of
// unique garbage would score NPMI ≈ 1 from its own self-co-occurrence.
func (x *CooccurrenceIndex) ColumnCoherence(values []string) float64 {
	distinct := make([]string, 0, MaxCoherenceSample)
	seen := make(map[string]struct{}, MaxCoherenceSample)
	for _, v := range values {
		nv := textnorm.Normalize(v)
		if nv == "" {
			continue
		}
		if _, ok := seen[nv]; ok {
			continue
		}
		seen[nv] = struct{}{}
		distinct = append(distinct, nv)
		if len(distinct) >= MaxCoherenceSample {
			break
		}
	}
	if len(distinct) < 2 {
		return 1
	}
	var sum float64
	var pairs int
	for i := 0; i < len(distinct); i++ {
		for j := i + 1; j < len(distinct); j++ {
			s, ok := x.npmiDiscounted(distinct[i], distinct[j])
			if !ok {
				continue // no evidence either way; neutral
			}
			sum += s
			pairs++
		}
	}
	if pairs == 0 {
		// No value pair has any corpus evidence outside this column:
		// treat as neutral rather than incoherent (rare long-tail columns).
		return 0
	}
	return sum / float64(pairs)
}

// npmiDiscounted is NPMI with one column of co-occurrence (the column under
// evaluation) removed from all counts. The boolean is false when either
// value never appears outside this column — such pairs carry no evidence
// about coherence and are skipped (at web scale every real value occurs
// elsewhere; at laptop scale long-tail synonyms may not).
func (x *CooccurrenceIndex) npmiDiscounted(u, v string) (float64, bool) {
	du := x.DocFreq(u) - 1
	dv := x.DocFreq(v) - 1
	if du <= 0 || dv <= 0 {
		return 0, false
	}
	co := x.CoFreq(u, v) - 1
	if co <= 0 || x.n <= 1 {
		// Both values are known elsewhere but never together: strong
		// evidence of incoherence.
		return -1, true
	}
	n := float64(x.n)
	puv := float64(co) / n
	if puv >= 1 {
		return 1, true
	}
	pu := float64(du) / n
	pv := float64(dv) / n
	pmi := math.Log(puv / (pu * pv))
	return pmi / (-math.Log(puv)), true
}
