package qos

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// enqueueAll loads a saturated queue with waiters described as
// (tenant, weight, class) triples, in order, without goroutines — the
// deterministic harness the table tests drive pickNext through.
type arrival struct {
	tenant string
	weight float64
	class  Class
}

func drainOrder(t *testing.T, arrivals []arrival, grants int) []string {
	t.Helper()
	fq := NewFairQueue(1)
	if !fq.TryAcquire(Interactive) {
		t.Fatal("fresh queue must grant its slot")
	}
	fq.mu.Lock()
	for _, a := range arrivals {
		fq.bands[a.class].enqueue(a.tenant, a.weight)
	}
	fq.mu.Unlock()
	var order []string
	for i := 0; i < grants; i++ {
		fq.mu.Lock()
		w, _ := fq.pickNext()
		fq.mu.Unlock()
		if w == nil {
			t.Fatalf("grant %d: queue drained early (got %v)", i, order)
		}
		order = append(order, w.tenant)
	}
	return order
}

// burst returns n identical arrivals.
func burst(tenant string, weight float64, class Class, n int) []arrival {
	out := make([]arrival, n)
	for i := range out {
		out[i] = arrival{tenant, weight, class}
	}
	return out
}

func counts(order []string) map[string]int {
	m := make(map[string]int)
	for _, t := range order {
		m[t]++
	}
	return m
}

// TestFairQueueOrdering pins the weighted-fair grant order for the shapes
// that matter: unequal weights share proportionally, equal weights
// interleave, interactive preempts batch regardless of arrival order, and
// a heavyweight cannot starve a lightweight.
func TestFairQueueOrdering(t *testing.T) {
	tests := []struct {
		name     string
		arrivals []arrival
		grants   int
		check    func(t *testing.T, order []string)
	}{
		{
			name:     "unequal weights split 3:1",
			arrivals: append(burst("a", 3, Batch, 12), burst("b", 1, Batch, 12)...),
			grants:   8,
			check: func(t *testing.T, order []string) {
				c := counts(order)
				if c["a"] != 6 || c["b"] != 2 {
					t.Fatalf("want 6 a / 2 b in first 8 grants, got %v (%v)", c, order)
				}
			},
		},
		{
			name:     "equal weights interleave despite burst arrival",
			arrivals: append(burst("a", 1, Batch, 6), burst("b", 1, Batch, 6)...),
			grants:   6,
			check: func(t *testing.T, order []string) {
				c := counts(order)
				if c["a"] != 3 || c["b"] != 3 {
					t.Fatalf("want strict 3/3 alternation window, got %v (%v)", c, order)
				}
			},
		},
		{
			name: "interactive preempts batch even arriving last",
			arrivals: append(burst("bulk", 10, Batch, 4),
				arrival{"ui", 1, Interactive}, arrival{"ui", 1, Interactive}),
			grants: 3,
			check: func(t *testing.T, order []string) {
				if order[0] != "ui" || order[1] != "ui" || order[2] != "bulk" {
					t.Fatalf("want [ui ui bulk...], got %v", order)
				}
			},
		},
		{
			name:     "heavyweight cannot starve a lightweight",
			arrivals: append(burst("whale", 100, Batch, 300), burst("minnow", 1, Batch, 3)...),
			grants:   202,
			check: func(t *testing.T, order []string) {
				// With weights 100:1 the minnow's first waiter finishes at
				// vtime 1, i.e. within the whale's first 100 grants — it must
				// appear in any 101-grant window, twice within 202.
				if c := counts(order); c["minnow"] < 2 {
					t.Fatalf("minnow starved: only %d grants in %d (want >= 2)", c["minnow"], len(order))
				}
			},
		},
		{
			name: "tenant churn: departed tenant frees its queue, newcomer is stamped fairly",
			arrivals: append(append(burst("old", 1, Batch, 2), burst("stay", 1, Batch, 4)...),
				burst("new", 1, Batch, 2)...),
			grants: 8,
			check: func(t *testing.T, order []string) {
				c := counts(order)
				if c["old"] != 2 || c["stay"] != 4 || c["new"] != 2 {
					t.Fatalf("want all waiters served, got %v (%v)", c, order)
				}
			},
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			tt.check(t, drainOrder(t, tt.arrivals, tt.grants))
		})
	}
}

// TestFairQueueChurnCleanup proves drained and cancelled tenants leave no
// map residue behind — tenant churn must not grow the queue without bound.
func TestFairQueueChurnCleanup(t *testing.T) {
	fq := NewFairQueue(1)
	fq.TryAcquire(Interactive)
	fq.mu.Lock()
	for i := 0; i < 50; i++ {
		fq.bands[Batch].enqueue(fmt.Sprintf("tenant-%d", i), 1)
	}
	fq.mu.Unlock()
	for i := 0; i < 50; i++ {
		fq.mu.Lock()
		fq.pickNext()
		fq.mu.Unlock()
	}
	fq.mu.Lock()
	defer fq.mu.Unlock()
	if n := len(fq.bands[Batch].queues); n != 0 {
		t.Fatalf("want 0 tenant queues after drain, got %d", n)
	}
	if fq.bands[Batch].count != 0 {
		t.Fatalf("want 0 waiters after drain, got %d", fq.bands[Batch].count)
	}
}

// TestFairQueueCancelMidQueue cancels a waiter stuck behind others and
// checks the queue skips it cleanly: remaining waiters still drain, and
// the cancelled tenant's bookkeeping disappears.
func TestFairQueueCancelMidQueue(t *testing.T) {
	fq := NewFairQueue(1)
	if !fq.TryAcquire(Batch) {
		t.Fatal("fresh queue must grant its slot")
	}

	results := make(chan string, 3)
	start := func(name string, ctx context.Context) chan error {
		done := make(chan error, 1)
		go func() {
			err := fq.Acquire(ctx, name, 1, Batch)
			if err == nil {
				results <- name
				fq.Release(Batch)
			}
			done <- err
		}()
		return done
	}
	waitFor := func(n int) {
		deadline := time.Now().Add(5 * time.Second)
		for fq.Waiting(Batch) < n {
			if time.Now().After(deadline) {
				t.Fatalf("timed out waiting for %d queued waiters", n)
			}
			time.Sleep(time.Millisecond)
		}
	}

	firstDone := start("first", context.Background())
	waitFor(1)
	midCtx, cancelMid := context.WithCancel(context.Background())
	midDone := start("middle", midCtx)
	waitFor(2)
	lastDone := start("last", context.Background())
	waitFor(3)

	cancelMid()
	if err := <-midDone; err != context.Canceled {
		t.Fatalf("cancelled waiter: want context.Canceled, got %v", err)
	}
	fq.Release(Batch) // grants first, whose Release grants last
	for _, want := range []string{"first", "last"} {
		select {
		case got := <-results:
			if got != want {
				t.Fatalf("grant order: want %s, got %s", want, got)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("timed out waiting for %s to be granted", want)
		}
	}
	<-firstDone
	<-lastDone
	if got := fq.InUse(); got != 0 {
		t.Fatalf("want 0 slots in use after drain, got %d", got)
	}
	if got := fq.Waiting(Batch); got != 0 {
		t.Fatalf("want 0 waiters after drain, got %d", got)
	}
}

// TestFairQueueConcurrentStress hammers the queue from many tenants with
// random cancellations — under -race this is the memory-safety proof, and
// the final accounting proves no slot or waiter leaks through the
// grant/cancel race.
func TestFairQueueConcurrentStress(t *testing.T) {
	fq := NewFairQueue(4)
	var wg sync.WaitGroup
	var held atomic.Int64
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			tenant := fmt.Sprintf("t%d", g%5)
			class := Class(g % int(numClasses))
			for i := 0; i < 200; i++ {
				ctx := context.Background()
				cancel := context.CancelFunc(func() {})
				if rng.Intn(4) == 0 {
					ctx, cancel = context.WithTimeout(ctx, time.Duration(rng.Intn(50))*time.Microsecond)
				}
				err := fq.Acquire(ctx, tenant, float64(1+g%3), class)
				cancel()
				if err != nil {
					continue
				}
				if h := held.Add(1); h > 4 {
					t.Errorf("slot budget exceeded: %d held", h)
				}
				time.Sleep(time.Duration(rng.Intn(20)) * time.Microsecond)
				held.Add(-1)
				fq.Release(class)
			}
		}(g)
	}
	wg.Wait()
	if got := fq.InUse(); got != 0 {
		t.Fatalf("leaked slots: InUse = %d after all goroutines exited", got)
	}
	for _, c := range []Class{Interactive, Batch} {
		if got := fq.Waiting(c); got != 0 {
			t.Fatalf("leaked waiters: Waiting(%v) = %d", c, got)
		}
	}
}

// TestFairQueueInteractiveReserve pins the head-of-line-blocking fix: batch
// admissions cap at capacity-1, so a batch flood leaves one slot that only
// an interactive request can take — without queuing behind the flood.
func TestFairQueueInteractiveReserve(t *testing.T) {
	fq := NewFairQueue(2)
	if fq.BatchLimit() != 1 {
		t.Fatalf("BatchLimit = %d, want 1", fq.BatchLimit())
	}
	if !fq.TryAcquire(Batch) {
		t.Fatal("first batch admission must succeed")
	}
	if fq.TryAcquire(Batch) {
		t.Fatal("second batch admission took the reserved interactive slot")
	}
	if !fq.TryAcquire(Interactive) {
		t.Fatal("interactive could not take the reserved slot")
	}
	if fq.InUse() != 2 || fq.BatchInUse() != 1 {
		t.Fatalf("inUse=%d batchInUse=%d, want 2/1", fq.InUse(), fq.BatchInUse())
	}

	// A queued batch waiter must not inherit the slot an interactive release
	// frees — the reserve survives slot transfer.
	done := make(chan error, 1)
	go func() { done <- fq.Acquire(context.Background(), "b", 1, Batch) }()
	deadline := time.Now().Add(5 * time.Second)
	for fq.Waiting(Batch) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("batch waiter never queued")
		}
		time.Sleep(time.Millisecond)
	}
	fq.Release(Interactive)
	select {
	case <-done:
		t.Fatal("batch waiter granted the reserved interactive slot")
	case <-time.After(20 * time.Millisecond):
	}
	if fq.InUse() != 1 {
		t.Fatalf("inUse after interactive release = %d, want 1", fq.InUse())
	}
	// And the slot really is usable by interactive right now.
	if !fq.TryAcquire(Interactive) {
		t.Fatal("reserved slot not available to interactive")
	}
	fq.Release(Interactive)

	// Releasing the batch slot grants the queued batch waiter.
	fq.Release(Batch)
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("queued batch waiter: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("queued batch waiter never granted after batch release")
	}
	fq.Release(Batch)
	if fq.InUse() != 0 || fq.BatchInUse() != 0 {
		t.Fatalf("drain: inUse=%d batchInUse=%d, want 0/0", fq.InUse(), fq.BatchInUse())
	}

	// Capacity 1 disables the reserve so batch still runs.
	one := NewFairQueue(1)
	if one.BatchLimit() != 1 {
		t.Fatalf("capacity-1 BatchLimit = %d, want 1", one.BatchLimit())
	}
	if !one.TryAcquire(Batch) {
		t.Fatal("capacity-1 queue refused batch entirely")
	}
	one.Release(Batch)
}
