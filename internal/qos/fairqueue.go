package qos

import (
	"context"
	"sync"
)

// Class is a waiter's priority band. Interactive strictly preempts Batch:
// whenever a slot frees, every queued interactive waiter is granted before
// any batch waiter, regardless of weights — weights arbitrate only among
// tenants within one band.
type Class int

const (
	Interactive Class = iota
	Batch
	numClasses
)

// String renders the class as a stable label value.
func (c Class) String() string {
	if c == Interactive {
		return "interactive"
	}
	return "batch"
}

// FairQueue arbitrates a fixed budget of compute slots across tenants with
// weighted-fair queuing. Each waiter is stamped with a virtual finish time
// finish = max(band.vtime, tenantTail) + 1/weight; when a slot frees, the
// eligible waiter with the smallest finish time is granted, so over any
// contended interval a tenant with weight w receives slots in proportion
// to w while an idle tenant's unused share redistributes — and no tenant
// starves, because every enqueued waiter's finish time is finite and the
// band's virtual clock only moves forward through grants.
//
// Slots transfer on release: Release hands the slot to the chosen waiter
// under the lock, so a fresh arrival can never barge past queued waiters of
// its own class.
//
// One slot is reserved for interactive work whenever capacity allows
// (capacity >= 2): batch admissions are capped at capacity-1, so a burst of
// batch rows can never occupy every slot and head-of-line-block the first
// interactive request behind a full batch drain. Interactive requests may
// use every slot. With capacity 1 the reserve is disabled — otherwise batch
// work could never run at all.
type FairQueue struct {
	mu         sync.Mutex
	capacity   int
	inUse      int
	batchInUse int
	bands      [numClasses]band
}

type waiter struct {
	tenant string
	finish float64
	ready  chan struct{}
	// granted flips under the queue mutex when Release transfers a slot to
	// this waiter; Acquire checks it to resolve the grant/cancel race.
	granted bool
}

type tenantQueue struct {
	waiters []*waiter
	// tail is the virtual finish time of this tenant's most recently
	// enqueued waiter; stamping successors past it is what makes a
	// back-to-back burst from one tenant interleave with other tenants
	// instead of draining first-come-first-served.
	tail float64
}

type band struct {
	vtime  float64
	queues map[string]*tenantQueue
	count  int
}

// NewFairQueue returns a queue arbitrating capacity concurrent slots;
// capacity < 1 selects 1.
func NewFairQueue(capacity int) *FairQueue {
	if capacity < 1 {
		capacity = 1
	}
	return &FairQueue{capacity: capacity}
}

// Acquire claims one slot for tenant, blocking in weighted-fair order when
// all slots are busy. weight <= 0 is treated as 1. It returns ctx.Err()
// when the context ends first; a slot granted in the same instant is
// passed on, never leaked.
func (fq *FairQueue) Acquire(ctx context.Context, tenant string, weight float64, class Class) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	fq.mu.Lock()
	if fq.admitLocked(class) {
		fq.mu.Unlock()
		return nil
	}
	if weight <= 0 {
		weight = 1
	}
	w := fq.bands[class].enqueue(tenant, weight)
	fq.mu.Unlock()

	select {
	case <-w.ready:
		return nil
	case <-ctx.Done():
	}
	fq.mu.Lock()
	if w.granted {
		// Release transferred us a slot in the same instant the context
		// died; the caller won't use it, so pass it to the next waiter.
		fq.releaseLocked(class)
		fq.mu.Unlock()
		return ctx.Err()
	}
	fq.bands[class].remove(w)
	fq.mu.Unlock()
	return ctx.Err()
}

// TryAcquire claims a slot for class only if one is immediately admissible;
// it never barges past queued waiters of the same class, and batch can
// never take the reserved interactive slot.
func (fq *FairQueue) TryAcquire(class Class) bool {
	fq.mu.Lock()
	defer fq.mu.Unlock()
	return fq.admitLocked(class)
}

// admitLocked applies the admission rule for class: a free slot, no queued
// same-class waiter to barge past, and for batch the capacity-1 reserve cap.
func (fq *FairQueue) admitLocked(class Class) bool {
	if fq.bands[class].count > 0 || fq.inUse >= fq.capacity {
		return false
	}
	if class == Batch {
		if fq.batchInUse >= fq.batchLimit() {
			return false
		}
		fq.batchInUse++
	}
	fq.inUse++
	return true
}

// batchLimit is the number of slots batch work may hold at once: one slot
// is reserved for interactive whenever capacity permits.
func (fq *FairQueue) batchLimit() int {
	if fq.capacity >= 2 {
		return fq.capacity - 1
	}
	return fq.capacity
}

// Release frees the caller's slot (class must match the acquire): the
// highest-priority, smallest-finish admissible waiter inherits it, or the
// slot returns to the free pool.
func (fq *FairQueue) Release(class Class) {
	fq.mu.Lock()
	fq.releaseLocked(class)
	fq.mu.Unlock()
}

func (fq *FairQueue) releaseLocked(class Class) {
	if class == Batch {
		fq.batchInUse--
	}
	if w, wc := fq.pickNext(); w != nil {
		if wc == Batch {
			fq.batchInUse++
		}
		w.granted = true
		close(w.ready)
		return // the slot transfers; inUse is unchanged
	}
	fq.inUse--
}

// pickNext pops the next waiter to grant: bands in priority order, and
// within a band the tenant queue whose head has the smallest virtual
// finish time (ties broken by tenant name for determinism). The batch band
// is skipped while batch already holds its reserve-capped share — a freed
// interactive slot then stays free for the next interactive arrival.
func (fq *FairQueue) pickNext() (*waiter, Class) {
	for ci := range fq.bands {
		b := &fq.bands[ci]
		if b.count == 0 {
			continue
		}
		if Class(ci) == Batch && fq.batchInUse >= fq.batchLimit() {
			continue
		}
		var bestName string
		var best *tenantQueue
		for name, tq := range b.queues {
			head := tq.waiters[0]
			if best == nil || head.finish < best.waiters[0].finish ||
				(head.finish == best.waiters[0].finish && name < bestName) {
				best, bestName = tq, name
			}
		}
		w := best.waiters[0]
		best.waiters = best.waiters[1:]
		b.count--
		if len(best.waiters) == 0 {
			delete(b.queues, bestName)
		}
		if w.finish > b.vtime {
			b.vtime = w.finish
		}
		return w, Class(ci)
	}
	return nil, 0
}

func (b *band) enqueue(tenant string, weight float64) *waiter {
	if b.queues == nil {
		b.queues = make(map[string]*tenantQueue)
	}
	tq := b.queues[tenant]
	if tq == nil {
		tq = &tenantQueue{}
		b.queues[tenant] = tq
	}
	start := b.vtime
	if tq.tail > start {
		start = tq.tail
	}
	w := &waiter{tenant: tenant, finish: start + 1/weight, ready: make(chan struct{})}
	tq.tail = w.finish
	tq.waiters = append(tq.waiters, w)
	b.count++
	return w
}

// remove drops a cancelled waiter; emptied tenant queues are deleted so
// tenant churn cannot grow the map without bound.
func (b *band) remove(w *waiter) {
	tq := b.queues[w.tenant]
	if tq == nil {
		return
	}
	for i, x := range tq.waiters {
		if x == w {
			tq.waiters = append(tq.waiters[:i], tq.waiters[i+1:]...)
			b.count--
			break
		}
	}
	if len(tq.waiters) == 0 {
		delete(b.queues, w.tenant)
	}
}

// Capacity returns the slot budget.
func (fq *FairQueue) Capacity() int { return fq.capacity }

// InUse returns the slots currently held.
func (fq *FairQueue) InUse() int {
	fq.mu.Lock()
	defer fq.mu.Unlock()
	return fq.inUse
}

// BatchInUse returns the slots currently held by batch work.
func (fq *FairQueue) BatchInUse() int {
	fq.mu.Lock()
	defer fq.mu.Unlock()
	return fq.batchInUse
}

// BatchLimit returns the batch admission cap (capacity-1 when a slot is
// reserved for interactive, capacity otherwise).
func (fq *FairQueue) BatchLimit() int {
	fq.mu.Lock()
	defer fq.mu.Unlock()
	return fq.batchLimit()
}

// Waiting returns the number of waiters queued in class.
func (fq *FairQueue) Waiting(class Class) int {
	fq.mu.Lock()
	defer fq.mu.Unlock()
	return fq.bands[class].count
}
