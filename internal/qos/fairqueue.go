package qos

import (
	"context"
	"sync"
)

// Class is a waiter's priority band. Interactive strictly preempts Batch:
// whenever a slot frees, every queued interactive waiter is granted before
// any batch waiter, regardless of weights — weights arbitrate only among
// tenants within one band.
type Class int

const (
	Interactive Class = iota
	Batch
	numClasses
)

// String renders the class as a stable label value.
func (c Class) String() string {
	if c == Interactive {
		return "interactive"
	}
	return "batch"
}

// FairQueue arbitrates a fixed budget of compute slots across tenants with
// weighted-fair queuing. Each waiter is stamped with a virtual finish time
// finish = max(band.vtime, tenantTail) + 1/weight; when a slot frees, the
// eligible waiter with the smallest finish time is granted, so over any
// contended interval a tenant with weight w receives slots in proportion
// to w while an idle tenant's unused share redistributes — and no tenant
// starves, because every enqueued waiter's finish time is finite and the
// band's virtual clock only moves forward through grants.
//
// Slots transfer on release: Release hands the slot to the chosen waiter
// under the lock, so the invariant "waiters exist only while all slots are
// in use" holds and a fresh arrival can never barge past the queue.
type FairQueue struct {
	mu       sync.Mutex
	capacity int
	inUse    int
	bands    [numClasses]band
}

type waiter struct {
	tenant string
	finish float64
	ready  chan struct{}
	// granted flips under the queue mutex when Release transfers a slot to
	// this waiter; Acquire checks it to resolve the grant/cancel race.
	granted bool
}

type tenantQueue struct {
	waiters []*waiter
	// tail is the virtual finish time of this tenant's most recently
	// enqueued waiter; stamping successors past it is what makes a
	// back-to-back burst from one tenant interleave with other tenants
	// instead of draining first-come-first-served.
	tail float64
}

type band struct {
	vtime  float64
	queues map[string]*tenantQueue
	count  int
}

// NewFairQueue returns a queue arbitrating capacity concurrent slots;
// capacity < 1 selects 1.
func NewFairQueue(capacity int) *FairQueue {
	if capacity < 1 {
		capacity = 1
	}
	return &FairQueue{capacity: capacity}
}

// Acquire claims one slot for tenant, blocking in weighted-fair order when
// all slots are busy. weight <= 0 is treated as 1. It returns ctx.Err()
// when the context ends first; a slot granted in the same instant is
// passed on, never leaked.
func (fq *FairQueue) Acquire(ctx context.Context, tenant string, weight float64, class Class) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if fq.TryAcquire() {
		return nil
	}
	fq.mu.Lock()
	if fq.inUse < fq.capacity {
		fq.inUse++
		fq.mu.Unlock()
		return nil
	}
	if weight <= 0 {
		weight = 1
	}
	w := fq.bands[class].enqueue(tenant, weight)
	fq.mu.Unlock()

	select {
	case <-w.ready:
		return nil
	case <-ctx.Done():
	}
	fq.mu.Lock()
	if w.granted {
		// Release transferred us a slot in the same instant the context
		// died; the caller won't use it, so pass it to the next waiter.
		fq.releaseLocked()
		fq.mu.Unlock()
		return ctx.Err()
	}
	fq.bands[class].remove(w)
	fq.mu.Unlock()
	return ctx.Err()
}

// TryAcquire claims a slot only if one is immediately free; it never
// barges past queued waiters (waiters exist only while all slots are
// busy).
func (fq *FairQueue) TryAcquire() bool {
	fq.mu.Lock()
	defer fq.mu.Unlock()
	if fq.inUse < fq.capacity {
		fq.inUse++
		return true
	}
	return false
}

// Release frees the caller's slot: the highest-priority, smallest-finish
// waiter (interactive band first) inherits it, or the slot returns to the
// free pool.
func (fq *FairQueue) Release() {
	fq.mu.Lock()
	fq.releaseLocked()
	fq.mu.Unlock()
}

func (fq *FairQueue) releaseLocked() {
	if w := fq.pickNext(); w != nil {
		w.granted = true
		close(w.ready)
		return // the slot transfers; inUse is unchanged
	}
	fq.inUse--
}

// pickNext pops the next waiter to grant: bands in priority order, and
// within a band the tenant queue whose head has the smallest virtual
// finish time (ties broken by tenant name for determinism).
func (fq *FairQueue) pickNext() *waiter {
	for ci := range fq.bands {
		b := &fq.bands[ci]
		if b.count == 0 {
			continue
		}
		var bestName string
		var best *tenantQueue
		for name, tq := range b.queues {
			head := tq.waiters[0]
			if best == nil || head.finish < best.waiters[0].finish ||
				(head.finish == best.waiters[0].finish && name < bestName) {
				best, bestName = tq, name
			}
		}
		w := best.waiters[0]
		best.waiters = best.waiters[1:]
		b.count--
		if len(best.waiters) == 0 {
			delete(b.queues, bestName)
		}
		if w.finish > b.vtime {
			b.vtime = w.finish
		}
		return w
	}
	return nil
}

func (b *band) enqueue(tenant string, weight float64) *waiter {
	if b.queues == nil {
		b.queues = make(map[string]*tenantQueue)
	}
	tq := b.queues[tenant]
	if tq == nil {
		tq = &tenantQueue{}
		b.queues[tenant] = tq
	}
	start := b.vtime
	if tq.tail > start {
		start = tq.tail
	}
	w := &waiter{tenant: tenant, finish: start + 1/weight, ready: make(chan struct{})}
	tq.tail = w.finish
	tq.waiters = append(tq.waiters, w)
	b.count++
	return w
}

// remove drops a cancelled waiter; emptied tenant queues are deleted so
// tenant churn cannot grow the map without bound.
func (b *band) remove(w *waiter) {
	tq := b.queues[w.tenant]
	if tq == nil {
		return
	}
	for i, x := range tq.waiters {
		if x == w {
			tq.waiters = append(tq.waiters[:i], tq.waiters[i+1:]...)
			b.count--
			break
		}
	}
	if len(tq.waiters) == 0 {
		delete(b.queues, w.tenant)
	}
}

// Capacity returns the slot budget.
func (fq *FairQueue) Capacity() int { return fq.capacity }

// InUse returns the slots currently held.
func (fq *FairQueue) InUse() int {
	fq.mu.Lock()
	defer fq.mu.Unlock()
	return fq.inUse
}

// Waiting returns the number of waiters queued in class.
func (fq *FairQueue) Waiting(class Class) int {
	fq.mu.Lock()
	defer fq.mu.Unlock()
	return fq.bands[class].count
}
