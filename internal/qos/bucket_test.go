package qos

import (
	"testing"
	"time"
)

// fakeClock drives a Bucket deterministically.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newTestBucket(rate float64, burst int) (*Bucket, *fakeClock) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	b := NewBucket(rate, burst)
	b.now = clk.now
	return b, clk
}

func TestBucketBurstThenRefill(t *testing.T) {
	b, clk := newTestBucket(2, 3) // 2 tokens/s, burst 3
	for i := 0; i < 3; i++ {
		if ok, _ := b.Take(); !ok {
			t.Fatalf("take %d within burst must succeed", i)
		}
	}
	ok, retry := b.Take()
	if ok {
		t.Fatal("take past burst must fail")
	}
	// Empty bucket at 2 tokens/s: one token in 500ms.
	if retry != 500*time.Millisecond {
		t.Fatalf("retry after empty bucket: want 500ms, got %v", retry)
	}
	clk.advance(retry)
	if ok, _ := b.Take(); !ok {
		t.Fatal("take after advertised retry delay must succeed")
	}
	// Refill is capped at burst: a long idle period buys burst, not more.
	clk.advance(time.Hour)
	for i := 0; i < 3; i++ {
		if ok, _ := b.Take(); !ok {
			t.Fatalf("take %d after long idle must succeed (burst refilled)", i)
		}
	}
	if ok, _ := b.Take(); ok {
		t.Fatal("4th take after idle must fail: refill is capped at burst")
	}
}

func TestBucketUnlimited(t *testing.T) {
	b, _ := newTestBucket(0, 1)
	if !b.Unlimited() {
		t.Fatal("rate 0 must be unlimited")
	}
	for i := 0; i < 10_000; i++ {
		if ok, retry := b.Take(); !ok || retry != 0 {
			t.Fatalf("unlimited take %d: want (true, 0), got (%v, %v)", i, ok, retry)
		}
	}
}

func TestBucketMinimumBurst(t *testing.T) {
	b, clk := newTestBucket(1, 0) // burst < 1 is raised to 1
	if ok, _ := b.Take(); !ok {
		t.Fatal("a limited bucket must admit at least one request")
	}
	if ok, _ := b.Take(); ok {
		t.Fatal("second immediate take must fail at burst 1")
	}
	clk.advance(time.Second)
	if ok, _ := b.Take(); !ok {
		t.Fatal("take after a full refill interval must succeed")
	}
}
