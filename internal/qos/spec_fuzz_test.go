package qos

import (
	"strings"
	"testing"
)

// FuzzParseSpecs is the hostile-input contract for the tenant-config
// parser: it must never panic, and must never allocate proportionally to
// attacker-chosen numbers — accepted output is bounded by the input's
// comma count (itself capped at maxSpecs), never by numeric field values.
func FuzzParseSpecs(f *testing.F) {
	for _, seed := range []string{
		"", "a", "a:3,b:1", "a:3:10:20", "*:1:100",
		"a:1000000:1e9:1000000000",
		"a,,b", "a:0", "a:1:NaN", "a:1:Inf", "a:1:-5", "a:1:10:20:30",
		strings.Repeat("a:1,", 100),
		strings.Repeat(":", 300),
		strings.Repeat(",", 10000),
		"a:99999999999999999999", "a:1:1e310", "Ä:1", "a\x00b:1",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, in string) {
		specs, err := ParseSpecs(in)
		if err != nil {
			if specs != nil {
				t.Fatalf("error with non-nil specs: %v", err)
			}
			return
		}
		if len(specs) > maxSpecs {
			t.Fatalf("parser accepted %d specs, cap is %d", len(specs), maxSpecs)
		}
		seen := make(map[string]bool, len(specs))
		for _, sp := range specs {
			if sp.Name != wildcard && !ValidTenantName(sp.Name) {
				t.Fatalf("accepted invalid tenant name %q", sp.Name)
			}
			if seen[sp.Name] {
				t.Fatalf("accepted duplicate tenant %q", sp.Name)
			}
			seen[sp.Name] = true
			if sp.Weight < 1 || sp.Weight > maxWeight {
				t.Fatalf("accepted out-of-range weight %d", sp.Weight)
			}
			if sp.Rate < 0 || sp.Rate > maxRate {
				t.Fatalf("accepted out-of-range rate %g", sp.Rate)
			}
			if sp.Burst < 0 || sp.Burst > maxBurst {
				t.Fatalf("accepted out-of-range burst %d", sp.Burst)
			}
			// Constructing the bucket must also be safe: EffectiveBurst is
			// a number, not an allocation size.
			sp.NewBucketFor()
		}
		// Accepted input must round-trip through the formatter.
		if _, err := ParseSpecs(FormatSpecs(specs)); err != nil {
			t.Fatalf("accepted specs failed to re-parse: %v", err)
		}
	})
}
