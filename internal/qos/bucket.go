// Package qos holds the admission-control primitives behind the serving
// layer's multi-tenant quality of service: a token-bucket rate limiter
// (per-tenant request quotas), a weighted-fair queue with two priority
// bands (interactive traffic preempts batch rows on the shared slot
// budget), and the parser for the operator-facing tenant spec grammar
// (`-tenants name:weight[:rate[:burst]],...`). Everything is standard
// library only, mirroring the rest of the repo.
package qos

import (
	"sync"
	"time"
)

// Bucket is a token-bucket rate limiter: capacity burst tokens, refilled
// continuously at rate tokens per second. Take is the only operation —
// admission control wants "may this request proceed, and if not, when
// should the client retry", nothing more.
type Bucket struct {
	mu     sync.Mutex
	rate   float64 // tokens per second; <= 0 means unlimited
	burst  float64
	tokens float64
	last   time.Time
	// now is swappable for tests; time.Now otherwise.
	now func() time.Time
}

// NewBucket returns a bucket refilling at rate tokens/second with capacity
// burst. rate <= 0 builds an unlimited bucket (Take always succeeds);
// burst < 1 is raised to 1 so a limited bucket can admit at least one
// request. The bucket starts full.
func NewBucket(rate float64, burst int) *Bucket {
	b := &Bucket{rate: rate, burst: float64(burst), now: time.Now}
	if b.burst < 1 {
		b.burst = 1
	}
	b.tokens = b.burst
	return b
}

// Unlimited reports whether this bucket never throttles.
func (b *Bucket) Unlimited() bool { return b.rate <= 0 }

// Take consumes one token if available. When the bucket is empty it
// returns ok=false and the delay after which one token will have
// accumulated — an honest Retry-After, derived from the same refill math
// that will admit the retry.
func (b *Bucket) Take() (ok bool, retryAfter time.Duration) {
	if b.rate <= 0 {
		return true, 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	now := b.now()
	if !b.last.IsZero() {
		if elapsed := now.Sub(b.last).Seconds(); elapsed > 0 {
			b.tokens += elapsed * b.rate
			if b.tokens > b.burst {
				b.tokens = b.burst
			}
		}
	}
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	wait := (1 - b.tokens) / b.rate // seconds until one whole token exists
	return false, time.Duration(wait * float64(time.Second))
}
