package qos

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Spec is one tenant's QoS configuration, parsed from the operator-facing
// `-tenants` flag.
type Spec struct {
	// Name identifies the tenant (the X-Tenant header value). The special
	// name "*" is the template applied to tenants with no explicit spec.
	Name string `json:"name"`
	// Weight is the tenant's weighted-fair share; >= 1.
	Weight int `json:"weight"`
	// Rate is the token-bucket refill in requests/second; 0 means
	// unlimited.
	Rate float64 `json:"rate,omitempty"`
	// Burst is the bucket capacity; 0 selects max(1, ceil(Rate)).
	Burst int `json:"burst,omitempty"`
}

// Hard bounds on hostile input: the parser must neither panic nor
// allocate proportionally to attacker-chosen numbers, so every field is
// range-checked and the spec count is capped before any splitting.
const (
	maxSpecs    = 64
	maxSpecLen  = 256
	maxNameLen  = 64
	maxWeight   = 1_000_000
	maxRate     = 1e9
	maxBurst    = 1_000_000_000
	wildcard    = "*"
	specGrammar = "name:weight[:rate[:burst]]"
)

// ParseSpecs parses the `-tenants` grammar: comma-separated entries of the
// form name[:weight[:rate[:burst]]]. weight defaults to 1, rate to
// unlimited, burst to max(1, ceil(rate)). Names match the corpus-name
// charset [A-Za-z0-9._-]{1,64}, plus the wildcard "*" naming the default
// template. An empty input returns (nil, nil).
func ParseSpecs(s string) ([]Spec, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	if n := strings.Count(s, ",") + 1; n > maxSpecs {
		return nil, fmt.Errorf("qos: too many tenant specs (%d, max %d)", n, maxSpecs)
	}
	var specs []Spec
	seen := make(map[string]bool)
	for _, entry := range strings.Split(s, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			return nil, fmt.Errorf("qos: empty tenant spec (want %s)", specGrammar)
		}
		if len(entry) > maxSpecLen {
			return nil, fmt.Errorf("qos: tenant spec too long (%d bytes, max %d)", len(entry), maxSpecLen)
		}
		spec, err := parseSpec(entry)
		if err != nil {
			return nil, err
		}
		if seen[spec.Name] {
			return nil, fmt.Errorf("qos: duplicate tenant spec %q", spec.Name)
		}
		seen[spec.Name] = true
		specs = append(specs, spec)
	}
	return specs, nil
}

func parseSpec(entry string) (Spec, error) {
	parts := strings.Split(entry, ":")
	if len(parts) > 4 {
		return Spec{}, fmt.Errorf("qos: tenant spec %q has too many fields (want %s)", entry, specGrammar)
	}
	spec := Spec{Name: parts[0], Weight: 1}
	if !ValidTenantName(spec.Name) && spec.Name != wildcard {
		return Spec{}, fmt.Errorf("qos: invalid tenant name %q (want [A-Za-z0-9._-]{1,%d} or %q)", spec.Name, maxNameLen, wildcard)
	}
	if len(parts) >= 2 {
		w, err := strconv.Atoi(strings.TrimSpace(parts[1]))
		if err != nil || w < 1 || w > maxWeight {
			return Spec{}, fmt.Errorf("qos: tenant %q: weight %q must be an integer in [1, %d]", spec.Name, parts[1], maxWeight)
		}
		spec.Weight = w
	}
	if len(parts) >= 3 {
		r, err := strconv.ParseFloat(strings.TrimSpace(parts[2]), 64)
		if err != nil || math.IsNaN(r) || math.IsInf(r, 0) || r < 0 || r > maxRate {
			return Spec{}, fmt.Errorf("qos: tenant %q: rate %q must be a number in [0, %g]", spec.Name, parts[2], maxRate)
		}
		spec.Rate = r
	}
	if len(parts) == 4 {
		b, err := strconv.Atoi(strings.TrimSpace(parts[3]))
		if err != nil || b < 0 || b > maxBurst {
			return Spec{}, fmt.Errorf("qos: tenant %q: burst %q must be an integer in [0, %d]", spec.Name, parts[3], maxBurst)
		}
		spec.Burst = b
	}
	return spec, nil
}

// EffectiveBurst resolves the bucket capacity: an explicit Burst wins,
// otherwise max(1, ceil(Rate)) so a limited tenant can always send at
// least one request.
func (sp Spec) EffectiveBurst() int {
	if sp.Burst > 0 {
		return sp.Burst
	}
	if b := int(math.Ceil(sp.Rate)); b > 1 {
		return b
	}
	return 1
}

// NewBucketFor builds the tenant's token bucket from its spec.
func (sp Spec) NewBucketFor() *Bucket {
	return NewBucket(sp.Rate, sp.EffectiveBurst())
}

// ValidTenantName reports whether s is a legal tenant identifier:
// [A-Za-z0-9._-]{1,64}, the same charset corpus names use.
func ValidTenantName(s string) bool {
	if len(s) == 0 || len(s) > maxNameLen {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case 'a' <= c && c <= 'z', 'A' <= c && c <= 'Z', '0' <= c && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return false
		}
	}
	return true
}

// FormatSpecs renders specs back into the flag grammar (round-trips
// through ParseSpecs); handy for logs and reports.
func FormatSpecs(specs []Spec) string {
	parts := make([]string, len(specs))
	for i, sp := range specs {
		s := fmt.Sprintf("%s:%d", sp.Name, sp.Weight)
		if sp.Rate > 0 || sp.Burst > 0 {
			s += ":" + strconv.FormatFloat(sp.Rate, 'g', -1, 64)
		}
		if sp.Burst > 0 {
			s += ":" + strconv.Itoa(sp.Burst)
		}
		parts[i] = s
	}
	return strings.Join(parts, ",")
}
