package qos

import (
	"reflect"
	"strings"
	"testing"
)

func TestParseSpecs(t *testing.T) {
	tests := []struct {
		in      string
		want    []Spec
		wantErr string
	}{
		{in: "", want: nil},
		{in: "   ", want: nil},
		{in: "a", want: []Spec{{Name: "a", Weight: 1}}},
		{in: "a:3,b:1", want: []Spec{{Name: "a", Weight: 3}, {Name: "b", Weight: 1}}},
		{in: "a:3:10", want: []Spec{{Name: "a", Weight: 3, Rate: 10}}},
		{in: "a:3:10.5:20", want: []Spec{{Name: "a", Weight: 3, Rate: 10.5, Burst: 20}}},
		{in: "*:1:100", want: []Spec{{Name: "*", Weight: 1, Rate: 100}}},
		{in: " a:2 , b:1 ", want: []Spec{{Name: "a", Weight: 2}, {Name: "b", Weight: 1}}},
		{in: "tenant.v2_x-1:5", want: []Spec{{Name: "tenant.v2_x-1", Weight: 5}}},

		{in: "a,,b", wantErr: "empty tenant spec"},
		{in: "a:3,a:1", wantErr: "duplicate"},
		{in: "bad name:1", wantErr: "invalid tenant name"},
		{in: "Ä:1", wantErr: "invalid tenant name"},
		{in: strings.Repeat("x", 65) + ":1", wantErr: "invalid tenant name"},
		{in: "a:0", wantErr: "weight"},
		{in: "a:-1", wantErr: "weight"},
		{in: "a:1000001", wantErr: "weight"},
		{in: "a:x", wantErr: "weight"},
		{in: "a:1:NaN", wantErr: "rate"},
		{in: "a:1:Inf", wantErr: "rate"},
		{in: "a:1:-5", wantErr: "rate"},
		{in: "a:1:1e300", wantErr: "rate"},
		{in: "a:1:10:-1", wantErr: "burst"},
		{in: "a:1:10:9999999999", wantErr: "burst"},
		{in: "a:1:10:20:30", wantErr: "too many fields"},
		{in: strings.Repeat("a:1,", maxSpecs) + "z:1", wantErr: "too many tenant specs"},
	}
	for _, tt := range tests {
		got, err := ParseSpecs(tt.in)
		if tt.wantErr != "" {
			if err == nil || !strings.Contains(err.Error(), tt.wantErr) {
				t.Errorf("ParseSpecs(%q): want error containing %q, got %v", tt.in, tt.wantErr, err)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseSpecs(%q): unexpected error %v", tt.in, err)
			continue
		}
		if !reflect.DeepEqual(got, tt.want) {
			t.Errorf("ParseSpecs(%q) = %+v, want %+v", tt.in, got, tt.want)
		}
	}
}

func TestFormatSpecsRoundTrip(t *testing.T) {
	in := "a:3:10:20,b:1,*:2:0.5"
	specs, err := ParseSpecs(in)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseSpecs(FormatSpecs(specs))
	if err != nil {
		t.Fatalf("formatted specs did not reparse: %v", err)
	}
	if !reflect.DeepEqual(specs, back) {
		t.Fatalf("round trip changed specs: %+v -> %+v", specs, back)
	}
}

func TestEffectiveBurst(t *testing.T) {
	tests := []struct {
		spec Spec
		want int
	}{
		{Spec{Rate: 0}, 1},            // unlimited: bucket unused, floor 1
		{Spec{Rate: 0.25}, 1},         // sub-1 rate still admits one
		{Spec{Rate: 10}, 10},          // default burst tracks the rate
		{Spec{Rate: 10.5}, 11},        // ceil
		{Spec{Rate: 10, Burst: 3}, 3}, // explicit wins
	}
	for _, tt := range tests {
		if got := tt.spec.EffectiveBurst(); got != tt.want {
			t.Errorf("EffectiveBurst(%+v) = %d, want %d", tt.spec, got, tt.want)
		}
	}
}
