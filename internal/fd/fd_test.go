package fd

import (
	"testing"
	"testing/quick"

	"mapsynth/internal/table"
)

func TestExactFD(t *testing.T) {
	res := Check(
		[]string{"Chicago", "San Francisco", "Los Angeles", "Houston"},
		[]string{"Illinois", "California", "California", "Texas"})
	if res.Ratio != 1 {
		t.Errorf("Ratio = %v, want 1", res.Ratio)
	}
	if !res.Holds(0.95) {
		t.Error("exact FD should hold at theta 0.95")
	}
	if res.DistinctLeft != 4 || res.DistinctRight != 3 {
		t.Errorf("distinct counts: %d, %d", res.DistinctLeft, res.DistinctRight)
	}
}

func TestApproximateFDPortland(t *testing.T) {
	// Definition 2: "Portland" maps to both Oregon and Maine; with enough
	// clean rows the 95%-approximate FD still holds.
	left := []string{"Portland", "Portland"}
	right := []string{"Oregon", "Maine"}
	for i := 0; i < 38; i++ {
		left = append(left, "City"+string(rune('A'+i%26))+string(rune('0'+i/26)))
		right = append(right, "State"+string(rune('A'+i%26)))
	}
	res := Check(left, right)
	if !res.Holds(0.95) {
		t.Errorf("approximate FD should hold: ratio=%v keeping=%d rows=%d", res.Ratio, res.Keeping, res.Rows)
	}
	if res.Holds(0.99) {
		t.Error("FD should not hold at theta 0.99")
	}
}

func TestNonFunctionalPair(t *testing.T) {
	res := Check(
		[]string{"a", "a", "b", "b"},
		[]string{"1", "2", "3", "4"})
	if res.Ratio != 0.5 {
		t.Errorf("Ratio = %v, want 0.5", res.Ratio)
	}
}

func TestNormalizationInsideCheck(t *testing.T) {
	// Case variants of the same left value must be recognized as one.
	res := Check(
		[]string{"USA", "usa ", "U.S.A"},
		[]string{"Washington", "Washington", "Washington"})
	if res.DistinctLeft != 2 {
		// "usa" and "u s a" differ after normalization; footnote/punct only
		// collapses USA and "usa ".
		t.Errorf("DistinctLeft = %d, want 2", res.DistinctLeft)
	}
	if res.Ratio != 1 {
		t.Errorf("Ratio = %v, want 1", res.Ratio)
	}
}

func TestEmptyInput(t *testing.T) {
	res := Check(nil, nil)
	if res.Rows != 0 || res.Ratio != 1 {
		t.Errorf("empty input: %+v", res)
	}
	res = Check([]string{"", " ", "--"}, []string{"a", "b", "c"})
	if res.Rows != 0 {
		t.Errorf("all-empty lefts should give 0 rows, got %d", res.Rows)
	}
}

func TestCheckPairsAgreesWithCheck(t *testing.T) {
	f := func(ls, rs []string) bool {
		n := len(ls)
		if len(rs) < n {
			n = len(rs)
		}
		if n > 25 {
			return true
		}
		pairs := make([]table.Pair, n)
		for i := 0; i < n; i++ {
			pairs[i] = table.Pair{L: ls[i], R: rs[i]}
		}
		a := Check(ls[:n], rs[:n])
		b := CheckPairs(pairs)
		return a.Ratio == b.Ratio && a.Rows == b.Rows
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRatioBounds(t *testing.T) {
	f := func(ls, rs []string) bool {
		n := len(ls)
		if len(rs) < n {
			n = len(rs)
		}
		if n > 25 {
			return true
		}
		res := Check(ls[:n], rs[:n])
		return res.Ratio >= 0 && res.Ratio <= 1 && res.Keeping <= res.Rows
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
