// Package fd checks (approximate) functional dependencies on column pairs
// (Definitions 1 and 2 of the paper).
//
// A column pair (L, R) satisfies the FD L -> R when every distinct left
// value maps to exactly one right value. Because entity-name ambiguity makes
// exact FDs brittle ("Portland" -> Oregon and "Portland" -> Maine), the
// pipeline uses θ-approximate FDs: the dependency must hold on a subset
// covering at least θ of the rows (θ ≈ 0.95).
package fd

import (
	"mapsynth/internal/table"
	"mapsynth/internal/textnorm"
)

// DefaultTheta is the paper's approximate-FD threshold.
const DefaultTheta = 0.95

// Result describes the outcome of an FD check on a column pair.
type Result struct {
	// Rows is the number of rows considered (pairs with non-empty
	// normalized left value).
	Rows int
	// Keeping is the maximum number of rows that can be kept such that the
	// kept subset satisfies the exact FD: for each left value, the count of
	// its most frequent right value.
	Keeping int
	// Ratio is Keeping / Rows, or 1 for an empty input.
	Ratio float64
	// DistinctLeft is the number of distinct normalized left values.
	DistinctLeft int
	// DistinctRight is the number of distinct normalized right values.
	DistinctRight int
}

// Holds reports whether the checked pair satisfies the θ-approximate FD.
func (r Result) Holds(theta float64) bool { return r.Ratio >= theta }

// Check measures to what degree the FD left -> right holds over two parallel
// value slices. Values are normalized first; rows whose left value
// normalizes to empty are ignored. Duplicate rows count once per occurrence
// (as in the paper, which reasons over relation instances).
func Check(left, right []string) Result {
	n := len(left)
	if len(right) < n {
		n = len(right)
	}
	// For each left value, count occurrences of each right value.
	counts := make(map[string]map[string]int)
	rightSet := make(map[string]struct{})
	rows := 0
	for i := 0; i < n; i++ {
		nl := textnorm.Normalize(left[i])
		if nl == "" {
			continue
		}
		nr := textnorm.Normalize(right[i])
		rows++
		m, ok := counts[nl]
		if !ok {
			m = make(map[string]int, 1)
			counts[nl] = m
		}
		m[nr]++
		rightSet[nr] = struct{}{}
	}
	keeping := 0
	for _, m := range counts {
		best := 0
		for _, c := range m {
			if c > best {
				best = c
			}
		}
		keeping += best
	}
	res := Result{
		Rows:          rows,
		Keeping:       keeping,
		DistinctLeft:  len(counts),
		DistinctRight: len(rightSet),
	}
	if rows == 0 {
		res.Ratio = 1
	} else {
		res.Ratio = float64(keeping) / float64(rows)
	}
	return res
}

// CheckPairs is Check over a deduplicated pair slice (e.g. a BinaryTable's
// pairs). Each distinct pair counts once.
func CheckPairs(pairs []table.Pair) Result {
	left := make([]string, len(pairs))
	right := make([]string, len(pairs))
	for i, p := range pairs {
		left[i] = p.L
		right[i] = p.R
	}
	return Check(left, right)
}
