package mapping

import (
	"testing"

	"mapsynth/internal/table"
)

func bin(id int, tableID int, domain string, pairs [][2]string) *table.BinaryTable {
	ls := make([]string, len(pairs))
	rs := make([]string, len(pairs))
	for i, p := range pairs {
		ls[i] = p[0]
		rs[i] = p[1]
	}
	return table.NewBinaryTable(id, tableID, domain, "l", "r", ls, rs)
}

func TestBuildDedupAndProvenance(t *testing.T) {
	a := bin(0, 10, "a.com", [][2]string{{"Japan", "JPN"}, {"Canada", "CAN"}})
	b := bin(1, 11, "b.com", [][2]string{{"JAPAN", "JPN"}, {"Peru", "PER"}})
	c := bin(2, 12, "a.com", [][2]string{{"Japan", "JPN"}})
	m := Build(7, []*table.BinaryTable{a, b, c})
	if m.ID != 7 {
		t.Errorf("ID = %d", m.ID)
	}
	if m.Size() != 3 {
		t.Fatalf("Size = %d, want 3 (Japan dedups across case)", m.Size())
	}
	if m.NumTables() != 3 || m.NumDomains() != 2 {
		t.Errorf("tables=%d domains=%d", m.NumTables(), m.NumDomains())
	}
	// Support counts candidates per normalized pair.
	if got := m.Support["japan\x1fjpn"]; got != 3 {
		t.Errorf("support(japan) = %d, want 3", got)
	}
}

func TestLookup(t *testing.T) {
	a := bin(0, 1, "d", [][2]string{{"Washington", "Olympia"}})
	b := bin(1, 2, "d", [][2]string{{"Washington", "Olympia"}})
	c := bin(2, 3, "d", [][2]string{{"Washington", "Seattle"}})
	m := Build(0, []*table.BinaryTable{a, b, c})
	got, ok := m.Lookup("washington")
	if !ok || got != "Olympia" {
		t.Errorf("Lookup = %q, %v; want majority Olympia", got, ok)
	}
	if _, ok := m.Lookup("nowhere"); ok {
		t.Error("unknown left should miss")
	}
	if !m.ContainsLeft("WASHINGTON  ") {
		t.Error("ContainsLeft should normalize")
	}
}

func TestDirections(t *testing.T) {
	oneToOne := Build(0, []*table.BinaryTable{bin(0, 1, "d", [][2]string{
		{"a", "1"}, {"b", "2"}, {"c", "3"},
	})})
	ds := oneToOne.Directions()
	if ds.LeftToRight != 1 || ds.RightToLeft != 1 {
		t.Errorf("1:1 directions = %+v", ds)
	}
	nToOne := Build(1, []*table.BinaryTable{bin(0, 1, "d", [][2]string{
		{"Mustang", "Ford"}, {"F-150", "Ford"}, {"Camry", "Toyota"},
	})})
	ds = nToOne.Directions()
	if ds.LeftToRight != 1 {
		t.Errorf("N:1 left-to-right = %v, want 1", ds.LeftToRight)
	}
	if ds.RightToLeft == 1 {
		t.Errorf("N:1 right-to-left = %v, want < 1", ds.RightToLeft)
	}
}

func TestBuildFromPairsFiltering(t *testing.T) {
	a := bin(0, 1, "x.com", [][2]string{{"k", "good"}, {"j", "fine"}})
	b := bin(1, 2, "y.com", [][2]string{{"k", "bad"}})
	voted := []table.Pair{{L: "k", R: "good"}, {L: "j", R: "fine"}}
	m := BuildFromPairs(3, voted, []*table.BinaryTable{a, b})
	if m.Size() != 2 {
		t.Fatalf("Size = %d, want 2", m.Size())
	}
	if got, _ := m.Lookup("k"); got != "good" {
		t.Errorf("Lookup(k) = %q", got)
	}
	// Provenance still spans both tables (b contributed nothing kept, but
	// is recorded as a filtered contributor).
	if m.NumDomains() != 2 {
		t.Errorf("domains = %d", m.NumDomains())
	}
}

func TestRightValues(t *testing.T) {
	m := Build(0, []*table.BinaryTable{bin(0, 1, "d", [][2]string{
		{"a", "X"}, {"b", "X"}, {"c", "Y"},
	})})
	rv := m.RightValues()
	if len(rv) != 2 || rv[0] != "x" || rv[1] != "y" {
		t.Errorf("RightValues = %v", rv)
	}
}

func TestPairsSorted(t *testing.T) {
	m := Build(0, []*table.BinaryTable{bin(0, 1, "d", [][2]string{
		{"z", "9"}, {"a", "1"}, {"m", "5"},
	})})
	for i := 1; i < len(m.Pairs); i++ {
		if m.Pairs[i].L < m.Pairs[i-1].L {
			t.Fatalf("pairs not sorted: %v", m.Pairs)
		}
	}
}
