// Package mapping defines the synthesized mapping relationship — the final
// output of the pipeline — together with its provenance statistics used for
// curation (Section 4.3): how many raw tables and distinct web domains
// contributed to the mapping, which correlates with importance.
package mapping

import (
	"fmt"
	"sort"

	"mapsynth/internal/table"
	"mapsynth/internal/textnorm"
)

// Mapping is one synthesized mapping relationship: the union of value pairs
// from all candidate tables in one partition, after conflict resolution.
type Mapping struct {
	// ID identifies the mapping among all synthesized outputs.
	ID int
	// Pairs holds the distinct value pairs (one representative surface form
	// per normalized pair), sorted for determinism.
	Pairs []table.Pair
	// Support counts, per normalized pair key, how many candidate tables
	// contributed the pair.
	Support map[string]int
	// TableIDs lists the distinct source table IDs that contributed.
	TableIDs []int
	// Domains lists the distinct provenance domains, sorted.
	Domains []string
	// CandidateIDs lists the BinaryTable IDs merged into this mapping.
	CandidateIDs []int

	// lookup maps each normalized left value to its best-supported
	// normalized right value.
	lookup map[string]string
	// surface maps normalized right values to a representative surface form.
	surfaceR map[string]string
}

// Build assembles a Mapping from the candidate tables of one partition.
// Duplicate pairs (after normalization) are merged, keeping the first-seen
// surface form; support counts one per contributing candidate table.
func Build(id int, cands []*table.BinaryTable) *Mapping {
	m := &Mapping{
		ID:       id,
		Support:  make(map[string]int),
		lookup:   make(map[string]string),
		surfaceR: make(map[string]string),
	}
	surface := make(map[string]table.Pair)
	tids := make(map[int]struct{})
	doms := make(map[string]struct{})
	// support per normalized left: right -> count, to pick lookup winners.
	perLeft := make(map[string]map[string]int)
	for _, b := range cands {
		m.CandidateIDs = append(m.CandidateIDs, b.ID)
		tids[b.TableID] = struct{}{}
		doms[b.Domain] = struct{}{}
		seenHere := make(map[string]struct{})
		for _, p := range b.Pairs {
			nl, nr, ok := textnorm.NormalizePair(p.L, p.R)
			if !ok {
				continue
			}
			k := textnorm.PairKey(nl, nr)
			if _, dup := seenHere[k]; dup {
				continue
			}
			seenHere[k] = struct{}{}
			if _, exists := surface[k]; !exists {
				surface[k] = p
			}
			m.Support[k]++
			rm, okL := perLeft[nl]
			if !okL {
				rm = make(map[string]int, 1)
				perLeft[nl] = rm
			}
			rm[nr]++
			if _, exists := m.surfaceR[nr]; !exists {
				m.surfaceR[nr] = p.R
			}
		}
	}
	m.Pairs = make([]table.Pair, 0, len(surface))
	for _, p := range surface {
		m.Pairs = append(m.Pairs, p)
	}
	sort.Slice(m.Pairs, func(i, j int) bool {
		if m.Pairs[i].L != m.Pairs[j].L {
			return m.Pairs[i].L < m.Pairs[j].L
		}
		return m.Pairs[i].R < m.Pairs[j].R
	})
	for nl, rm := range perLeft {
		bestR, bestC := "", -1
		// Deterministic winner: highest count, then lexicographic.
		rs := make([]string, 0, len(rm))
		for r := range rm {
			rs = append(rs, r)
		}
		sort.Strings(rs)
		for _, r := range rs {
			if rm[r] > bestC {
				bestR, bestC = r, rm[r]
			}
		}
		m.lookup[nl] = bestR
	}
	for t := range tids {
		m.TableIDs = append(m.TableIDs, t)
	}
	sort.Ints(m.TableIDs)
	for d := range doms {
		m.Domains = append(m.Domains, d)
	}
	sort.Strings(m.Domains)
	sort.Ints(m.CandidateIDs)
	return m
}

// BuildFromPairs assembles a Mapping from an explicit pair list (e.g. the
// output of majority-vote conflict resolution) while taking provenance
// statistics (table IDs, domains, candidate IDs) from the contributing
// candidate tables. Only pairs in the explicit list survive.
func BuildFromPairs(id int, pairs []table.Pair, cands []*table.BinaryTable) *Mapping {
	keep := make(map[string]struct{}, len(pairs))
	for _, p := range pairs {
		nl, nr, ok := textnorm.NormalizePair(p.L, p.R)
		if !ok {
			continue
		}
		keep[textnorm.PairKey(nl, nr)] = struct{}{}
	}
	filtered := make([]*table.BinaryTable, 0, len(cands))
	for _, b := range cands {
		fb := &table.BinaryTable{
			ID: b.ID, TableID: b.TableID, Domain: b.Domain,
			LeftName: b.LeftName, RightName: b.RightName,
		}
		for _, p := range b.Pairs {
			nl, nr, ok := textnorm.NormalizePair(p.L, p.R)
			if !ok {
				continue
			}
			if _, hit := keep[textnorm.PairKey(nl, nr)]; hit {
				fb.Pairs = append(fb.Pairs, p)
			}
		}
		filtered = append(filtered, fb)
	}
	return Build(id, filtered)
}

// PairSupports returns the support counts aligned with Pairs: element i is
// the number of candidate tables that contributed Pairs[i]. Persistence
// formats store this slice instead of the keyed Support map.
func (m *Mapping) PairSupports() []int {
	out := make([]int, len(m.Pairs))
	for i, p := range m.Pairs {
		out[i] = m.SupportOf(p)
	}
	return out
}

// SurfaceRights returns a copy of the representative surface form recorded
// for each normalized right value. Persistence formats must store this map:
// it is keyed by first-seen order during Build, which cannot be recovered
// from the sorted Pairs slice alone.
func (m *Mapping) SurfaceRights() map[string]string {
	out := make(map[string]string, len(m.surfaceR))
	for k, v := range m.surfaceR {
		out[k] = v
	}
	return out
}

// Restore reconstructs a Mapping from persisted fields, the inverse of the
// export accessors above. pairSupports must align with pairs; tableIDs,
// domains and candidateIDs are stored sorted by Build and are kept as given.
// The internal lookup table is re-derived from the supports using the same
// deterministic winner rule as Build (highest support, then lexicographically
// smallest right value), so a restored mapping answers Lookup/LookupAll
// identically to the original.
func Restore(id int, pairs []table.Pair, pairSupports []int,
	tableIDs []int, domains []string, candidateIDs []int,
	surfaceR map[string]string) *Mapping {
	m := &Mapping{
		ID:           id,
		Pairs:        pairs,
		Support:      make(map[string]int, len(pairs)),
		TableIDs:     tableIDs,
		Domains:      domains,
		CandidateIDs: candidateIDs,
		lookup:       make(map[string]string),
		surfaceR:     surfaceR,
	}
	if m.surfaceR == nil {
		m.surfaceR = make(map[string]string)
	}
	perLeft := make(map[string]map[string]int)
	for i, p := range pairs {
		nl, nr, ok := textnorm.NormalizePair(p.L, p.R)
		if !ok {
			continue
		}
		sup := 0
		if i < len(pairSupports) {
			sup = pairSupports[i]
		}
		m.Support[textnorm.PairKey(nl, nr)] = sup
		rm, okL := perLeft[nl]
		if !okL {
			rm = make(map[string]int, 1)
			perLeft[nl] = rm
		}
		rm[nr] = sup
	}
	for nl, rm := range perLeft {
		bestR, bestC := "", -1
		rs := make([]string, 0, len(rm))
		for r := range rm {
			rs = append(rs, r)
		}
		sort.Strings(rs)
		for _, r := range rs {
			if rm[r] > bestC {
				bestR, bestC = r, rm[r]
			}
		}
		m.lookup[nl] = bestR
	}
	return m
}

// NormalizedValues returns the distinct normalized left and right values of
// the mapping's pairs, each sorted ascending — the exact value sets
// containment queries test against. Index sources consume this (the heap
// source at build time, the v2 snapshot writer at persist time), so both
// backends answer membership identically by construction.
func (m *Mapping) NormalizedValues() (left, right []string) {
	lset := make(map[string]struct{}, len(m.Pairs))
	rset := make(map[string]struct{}, len(m.Pairs))
	for _, p := range m.Pairs {
		nl, nr, ok := textnorm.NormalizePair(p.L, p.R)
		if !ok {
			continue
		}
		lset[nl] = struct{}{}
		rset[nr] = struct{}{}
	}
	left = make([]string, 0, len(lset))
	for v := range lset {
		left = append(left, v)
	}
	right = make([]string, 0, len(rset))
	for v := range rset {
		right = append(right, v)
	}
	sort.Strings(left)
	sort.Strings(right)
	return left, right
}

// Size returns the number of distinct pairs.
func (m *Mapping) Size() int { return len(m.Pairs) }

// SupportOf returns the number of candidate tables that contributed the
// given pair (matched by normalized value), or 0 if the pair is unknown.
func (m *Mapping) SupportOf(p table.Pair) int {
	nl, nr, ok := textnorm.NormalizePair(p.L, p.R)
	if !ok {
		return 0
	}
	return m.Support[textnorm.PairKey(nl, nr)]
}

// NumTables returns the number of distinct source tables.
func (m *Mapping) NumTables() int { return len(m.TableIDs) }

// NumDomains returns the number of distinct provenance domains — the
// paper's primary popularity signal for curation.
func (m *Mapping) NumDomains() int { return len(m.Domains) }

// Lookup maps a left value (any surface form) to the best-supported right
// value's representative surface form.
func (m *Mapping) Lookup(left string) (string, bool) {
	nr, ok := m.lookup[textnorm.Normalize(left)]
	if !ok {
		return "", false
	}
	if s, okS := m.surfaceR[nr]; okS {
		return s, true
	}
	return nr, true
}

// LookupAll returns every right surface form recorded for the left value,
// majority winner first. Synthesized mappings may legitimately carry several
// synonymous right mentions for one left value (Table 6 of the paper);
// applications like auto-join try all of them.
func (m *Mapping) LookupAll(left string) []string {
	nl := textnorm.Normalize(left)
	if _, ok := m.lookup[nl]; !ok {
		return nil
	}
	var out []string
	if winner, ok := m.surfaceR[m.lookup[nl]]; ok {
		out = append(out, winner)
	}
	for _, p := range m.Pairs {
		pl, pr, ok := textnorm.NormalizePair(p.L, p.R)
		if !ok || pl != nl {
			continue
		}
		if pr == m.lookup[nl] {
			continue // majority winner already included
		}
		out = append(out, p.R)
	}
	return out
}

// ContainsLeft reports whether the mapping knows the left value.
func (m *Mapping) ContainsLeft(left string) bool {
	_, ok := m.lookup[textnorm.Normalize(left)]
	return ok
}

// RightValues returns the distinct normalized right values.
func (m *Mapping) RightValues() []string {
	set := make(map[string]struct{})
	for _, p := range m.Pairs {
		set[textnorm.Normalize(p.R)] = struct{}{}
	}
	out := make([]string, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// DirectionStats describes how functional each direction of the mapping is,
// distinguishing 1:1 from N:1 relationships.
type DirectionStats struct {
	// LeftToRight is the fraction of distinct left values mapping to a
	// single right value.
	LeftToRight float64
	// RightToLeft is the fraction of distinct right values mapped from a
	// single left value.
	RightToLeft float64
}

// Directions computes DirectionStats over the normalized pairs.
func (m *Mapping) Directions() DirectionStats {
	l2r := make(map[string]map[string]struct{})
	r2l := make(map[string]map[string]struct{})
	for _, p := range m.Pairs {
		nl, nr := textnorm.Normalize(p.L), textnorm.Normalize(p.R)
		if l2r[nl] == nil {
			l2r[nl] = make(map[string]struct{})
		}
		l2r[nl][nr] = struct{}{}
		if r2l[nr] == nil {
			r2l[nr] = make(map[string]struct{})
		}
		r2l[nr][nl] = struct{}{}
	}
	var ds DirectionStats
	if len(l2r) > 0 {
		single := 0
		for _, rs := range l2r {
			if len(rs) == 1 {
				single++
			}
		}
		ds.LeftToRight = float64(single) / float64(len(l2r))
	}
	if len(r2l) > 0 {
		single := 0
		for _, ls := range r2l {
			if len(ls) == 1 {
				single++
			}
		}
		ds.RightToLeft = float64(single) / float64(len(r2l))
	}
	return ds
}

// String renders a short description.
func (m *Mapping) String() string {
	return fmt.Sprintf("mapping#%d(%d pairs, %d tables, %d domains)",
		m.ID, len(m.Pairs), len(m.TableIDs), len(m.Domains))
}
