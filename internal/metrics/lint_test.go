package metrics

import (
	"strings"
	"testing"
)

func TestLintAccepts(t *testing.T) {
	good := `# HELP reqs_total Requests.
# TYPE reqs_total counter
reqs_total{code="ok"} 10
reqs_total{code="err"} 2
# HELP temp Gauge.
# TYPE temp gauge
temp -3.5
# HELP lat Latency.
# TYPE lat histogram
lat_bucket{le="0.1"} 1
lat_bucket{le="+Inf"} 2
lat_sum 1.5
lat_count 2
`
	if err := Lint([]byte(good)); err != nil {
		t.Errorf("valid exposition rejected: %v", err)
	}
}

func TestLintRejects(t *testing.T) {
	cases := []struct {
		name string
		data string
		want string
	}{
		{
			"sample without TYPE",
			"orphan_total 1\n",
			"no preceding # TYPE",
		},
		{
			"sample without HELP",
			"# TYPE x_total counter\nx_total 1\n",
			"no preceding # HELP",
		},
		{
			"duplicate HELP",
			"# HELP x a\n# HELP x b\n",
			"duplicate HELP",
		},
		{
			"duplicate TYPE",
			"# TYPE x counter\n# TYPE x counter\n",
			"duplicate TYPE",
		},
		{
			"unknown type",
			"# TYPE x fancy\n",
			"unknown type",
		},
		{
			"duplicate series",
			"# HELP x a\n# TYPE x counter\nx{l=\"a\"} 1\nx{l=\"a\"} 2\n",
			"duplicate series",
		},
		{
			"bucket without le",
			"# HELP h a\n# TYPE h histogram\nh_bucket{x=\"1\"} 1\n",
			"without le label",
		},
		{
			"non-numeric value",
			"# HELP x a\n# TYPE x counter\nx nope\n",
			"does not parse",
		},
		{
			"unterminated label value",
			"# HELP x a\n# TYPE x counter\nx{l=\"a} 1\n",
			"unterminated",
		},
		{
			"invalid metric name",
			"# HELP 9x a\n",
			"invalid metric name",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := Lint([]byte(tc.data))
			if err == nil {
				t.Fatal("lint accepted invalid exposition")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestLintLabelSetDisambiguatesSeries(t *testing.T) {
	data := `# HELP x a
# TYPE x counter
x{a="1",b="2"} 1
x{b="2",a="1"} 1
`
	if err := Lint([]byte(data)); err == nil {
		t.Error("reordered labels must still be the same series")
	}
}

func TestLintSpecialValues(t *testing.T) {
	data := `# HELP x a
# TYPE x gauge
x{k="inf"} +Inf
x{k="ninf"} -Inf
x{k="nan"} NaN
x{k="ts"} 1 1700000000000
`
	if err := Lint([]byte(data)); err != nil {
		t.Errorf("special values rejected: %v", err)
	}
}
