package metrics

import (
	"bytes"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"mapsynth/internal/latency"
)

func TestCounterGaugeExposition(t *testing.T) {
	r := New()
	c := r.Counter("test_requests_total", "Requests handled.")
	c.Add(3)
	c.Inc()
	c.Add(-5) // ignored: counters are monotonic
	g := r.Gauge("test_temperature", "Current temperature.")
	g.Set(2.5)
	g.Add(-1)
	v := r.CounterVec("test_errors_total", "Errors by code.", "code")
	v.With("bad_request").Add(2)
	v.With("internal").Inc()
	r.GaugeFunc("test_uptime_seconds", "Uptime.", func() float64 { return 42 })
	r.CounterVecFunc("test_dynamic_total", "Dynamic series.", []string{"corpus", "endpoint"},
		func(emit func([]string, float64)) {
			emit([]string{"default", "lookup"}, 7)
		})

	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	want := `# HELP test_dynamic_total Dynamic series.
# TYPE test_dynamic_total counter
test_dynamic_total{corpus="default",endpoint="lookup"} 7
# HELP test_errors_total Errors by code.
# TYPE test_errors_total counter
test_errors_total{code="bad_request"} 2
test_errors_total{code="internal"} 1
# HELP test_requests_total Requests handled.
# TYPE test_requests_total counter
test_requests_total 4
# HELP test_temperature Current temperature.
# TYPE test_temperature gauge
test_temperature 1.5
# HELP test_uptime_seconds Uptime.
# TYPE test_uptime_seconds gauge
test_uptime_seconds 42
`
	if got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
	if err := Lint(buf.Bytes()); err != nil {
		t.Errorf("own exposition fails lint: %v", err)
	}
}

func TestOwnedHistogram(t *testing.T) {
	r := New()
	h := r.Histogram("test_duration_seconds", "Durations.", []float64{0.01, 0.1, 1})
	h.Observe(0.005)
	h.Observe(0.1) // exactly on a bound: counted as ≤ that bound
	h.Observe(5)   // beyond the last bound: only +Inf
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	want := `# HELP test_duration_seconds Durations.
# TYPE test_duration_seconds histogram
test_duration_seconds_bucket{le="0.01"} 1
test_duration_seconds_bucket{le="0.1"} 2
test_duration_seconds_bucket{le="1"} 2
test_duration_seconds_bucket{le="+Inf"} 3
test_duration_seconds_sum 5.105
test_duration_seconds_count 3
`
	if got := buf.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
	if err := Lint(buf.Bytes()); err != nil {
		t.Errorf("lint: %v", err)
	}
}

// TestLatencySnapshotGolden pins the exposition bytes of the
// latency.Histogram → cumulative le-bucket conversion, so the wire format
// cannot silently drift. The observations are chosen to cover the edges:
// zero, an exact power of two, a bucket interior, and a top-bucket overflow.
func TestLatencySnapshotGolden(t *testing.T) {
	var lh latency.Histogram
	lh.Observe(0)                            // bucket 0
	lh.Observe(1 * time.Microsecond)         // bucket 0
	lh.Observe(128 * time.Microsecond)       // bucket 7 (exact power of two)
	lh.Observe(200 * time.Microsecond)       // bucket 7 interior
	lh.Observe((1 << 45) * time.Microsecond) // clamps into bucket 39

	r := New()
	r.HistogramVecFunc("request_duration_seconds", "Latency.", []string{"endpoint"},
		func(emit func([]string, HistogramSnapshot)) {
			emit([]string{"lookup"}, LatencySnapshot(&lh))
		})
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	got := buf.String()

	// Spot-pin the structurally interesting lines rather than all 40
	// buckets; the full-line count pins the bucket layout.
	wantLines := []string{
		`# HELP request_duration_seconds Latency.`,
		`# TYPE request_duration_seconds histogram`,
		`request_duration_seconds_bucket{endpoint="lookup",le="0.000001"} 2`,       // ≤ 1µs
		`request_duration_seconds_bucket{endpoint="lookup",le="0.000127"} 2`,       // ≤ 127µs: the two fast ones
		`request_duration_seconds_bucket{endpoint="lookup",le="0.000255"} 4`,       // ≤ 255µs: 128µs and 200µs join
		`request_duration_seconds_bucket{endpoint="lookup",le="1099511.627775"} 5`, // top finite bucket
		`request_duration_seconds_bucket{endpoint="lookup",le="+Inf"} 5`,
		`request_duration_seconds_count{endpoint="lookup"} 5`,
	}
	for _, w := range wantLines {
		if !strings.Contains(got, w+"\n") {
			t.Errorf("exposition missing line %q\ngot:\n%s", w, got)
		}
	}
	// 2 comment lines + 40 finite buckets + +Inf + sum + count.
	if n := strings.Count(got, "\n"); n != 2+latency.NumBuckets+3 {
		t.Errorf("exposition has %d lines, want %d", n, 2+latency.NumBuckets+3)
	}
	if err := Lint(buf.Bytes()); err != nil {
		t.Errorf("lint: %v", err)
	}
}

// TestLatencySnapshotMatchesPercentile checks the two views of one
// histogram agree: the percentile's reported bound equals the `le` bound of
// the bucket the cumulative distribution crosses.
func TestLatencySnapshotMatchesPercentile(t *testing.T) {
	var lh latency.Histogram
	for i := 0; i < 99; i++ {
		lh.Observe(100 * time.Microsecond)
	}
	lh.Observe(50 * time.Millisecond)
	s := LatencySnapshot(&lh)
	p99 := lh.Percentile(0.99).Seconds()
	found := false
	for i, cum := range s.Cumulative {
		if cum >= 99 {
			if s.Bounds[i] != p99 {
				t.Errorf("le bound %v != p99 %v", s.Bounds[i], p99)
			}
			found = true
			break
		}
	}
	if !found {
		t.Fatal("no bucket crosses rank 99")
	}
}

func TestRegistryHandler(t *testing.T) {
	r := New()
	r.Counter("test_total", "A counter.").Inc()
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/v1/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); ct != TextContentType {
		t.Errorf("Content-Type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "test_total 1\n") {
		t.Errorf("body = %q", rec.Body.String())
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	r := New()
	r.Counter("dup_total", "first")
	defer func() {
		if recover() == nil {
			t.Error("duplicate registration must panic")
		}
	}()
	r.Counter("dup_total", "second")
}

func TestInvalidNamesPanic(t *testing.T) {
	for _, name := range []string{"", "9leading", "has space", "bad-dash"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("metric name %q must be rejected", name)
				}
			}()
			New().Counter(name, "x")
		}()
	}
	defer func() {
		if recover() == nil {
			t.Error("label name __reserved must be rejected")
		}
	}()
	New().CounterVec("ok_total", "x", "__reserved")
}

func TestLabelEscaping(t *testing.T) {
	r := New()
	r.CounterVec("esc_total", "Escapes.", "path").With(`a"b\c` + "\n").Inc()
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	want := `esc_total{path="a\"b\\c\n"} 1` + "\n"
	if !strings.Contains(buf.String(), want) {
		t.Errorf("got %q, want to contain %q", buf.String(), want)
	}
	if err := Lint(buf.Bytes()); err != nil {
		t.Errorf("lint: %v", err)
	}
}

func TestConcurrentCounters(t *testing.T) {
	r := New()
	c := r.Counter("conc_total", "x")
	v := r.CounterVec("conc_vec_total", "x", "k")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				v.With("a").Inc()
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 || v.With("a").Value() != 8000 {
		t.Errorf("counts = %d, %d; want 8000", c.Value(), v.With("a").Value())
	}
}
