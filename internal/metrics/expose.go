package metrics

import (
	"bufio"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"
)

// TextContentType is the Content-Type of the Prometheus text exposition
// format, version 0.0.4.
const TextContentType = "text/plain; version=0.0.4; charset=utf-8"

// WriteText renders the registry as a Prometheus text exposition: families
// sorted by name, each with its # HELP and # TYPE line followed by its
// series; histograms expand into _bucket lines (cumulative, `le`-labeled,
// +Inf last), _sum and _count. The output is deterministic for a fixed
// metric state, which is what lets a golden test pin the format.
func (r *Registry) WriteText(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, f := range r.snapshot() {
		bw.WriteString("# HELP ")
		bw.WriteString(f.name)
		bw.WriteByte(' ')
		bw.WriteString(escapeHelp(f.help))
		bw.WriteByte('\n')
		bw.WriteString("# TYPE ")
		bw.WriteString(f.name)
		bw.WriteByte(' ')
		bw.WriteString(string(f.typ))
		bw.WriteByte('\n')
		f.collect(func(s Sample) {
			if f.typ == TypeHistogram && s.Hist != nil {
				writeHistogram(bw, f, s)
				return
			}
			writeSeries(bw, f.name, f.labels, s.LabelValues, "", "", s.Value)
		})
	}
	return bw.Flush()
}

// writeHistogram expands one histogram sample into its exposition lines.
func writeHistogram(bw *bufio.Writer, f *family, s Sample) {
	h := s.Hist
	for i, bound := range h.Bounds {
		writeSeries(bw, f.name+"_bucket", f.labels, s.LabelValues, "le", formatValue(bound), float64(h.Cumulative[i]))
	}
	writeSeries(bw, f.name+"_bucket", f.labels, s.LabelValues, "le", "+Inf", float64(h.Count))
	writeSeries(bw, f.name+"_sum", f.labels, s.LabelValues, "", "", h.Sum)
	writeSeries(bw, f.name+"_count", f.labels, s.LabelValues, "", "", float64(h.Count))
}

// writeSeries writes one sample line, appending the optional extra label
// (the histogram `le`) after the family's declared labels.
func writeSeries(bw *bufio.Writer, name string, labels, values []string, extraLabel, extraValue string, v float64) {
	bw.WriteString(name)
	if len(labels) > 0 || extraLabel != "" {
		bw.WriteByte('{')
		for i, l := range labels {
			if i > 0 {
				bw.WriteByte(',')
			}
			bw.WriteString(l)
			bw.WriteString(`="`)
			bw.WriteString(escapeLabelValue(values[i]))
			bw.WriteByte('"')
		}
		if extraLabel != "" {
			if len(labels) > 0 {
				bw.WriteByte(',')
			}
			bw.WriteString(extraLabel)
			bw.WriteString(`="`)
			bw.WriteString(escapeLabelValue(extraValue))
			bw.WriteByte('"')
		}
		bw.WriteByte('}')
	}
	bw.WriteByte(' ')
	bw.WriteString(formatValue(v))
	bw.WriteByte('\n')
}

// formatValue renders a sample value: plain decimal notation for everything
// a counter or latency bound produces, falling back to scientific notation
// only for magnitudes where 'f' would be unreadable.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, +1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	if a := math.Abs(v); a != 0 && (a >= 1e15 || a < 1e-9) {
		return strconv.FormatFloat(v, 'g', -1, 64)
	}
	return strconv.FormatFloat(v, 'f', -1, 64)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeLabelValue(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

// Handler returns an http.Handler serving the exposition — the body of
// GET /v1/metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", TextContentType)
		r.WriteText(w)
	})
}
