package metrics

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Lint validates a Prometheus text exposition the way the CI observability
// job wants it validated: every sample series must belong to a family that
// declared # HELP and # TYPE before its first sample, label syntax and
// sample values must parse, and no series (name plus full label set) may
// appear twice. It returns nil for a clean exposition and a line-numbered
// error for the first violation.
//
// Histogram families are understood structurally: once a family is declared
// `histogram`, its _bucket/_sum/_count suffixed samples belong to it, and
// each _bucket line must carry an `le` label.
func Lint(data []byte) error {
	helpSeen := make(map[string]bool)
	typeSeen := make(map[string]Type)
	seriesSeen := make(map[string]bool)

	for n, line := range strings.Split(string(data), "\n") {
		lineNo := n + 1
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				continue // free-form comment
			}
			name := fields[2]
			if !validMetricName(name) {
				return fmt.Errorf("line %d: invalid metric name %q in %s line", lineNo, name, fields[1])
			}
			if fields[1] == "HELP" {
				if helpSeen[name] {
					return fmt.Errorf("line %d: duplicate HELP for %q", lineNo, name)
				}
				helpSeen[name] = true
			} else {
				if _, dup := typeSeen[name]; dup {
					return fmt.Errorf("line %d: duplicate TYPE for %q", lineNo, name)
				}
				if len(fields) < 4 {
					return fmt.Errorf("line %d: TYPE line for %q missing a type", lineNo, name)
				}
				switch t := Type(fields[3]); t {
				case TypeCounter, TypeGauge, TypeHistogram, "summary", "untyped":
					typeSeen[name] = t
				default:
					return fmt.Errorf("line %d: unknown type %q for %q", lineNo, fields[3], name)
				}
			}
			continue
		}

		name, labels, value, err := parseSample(line)
		if err != nil {
			return fmt.Errorf("line %d: %v", lineNo, err)
		}
		if _, err := strconv.ParseFloat(value, 64); err != nil {
			return fmt.Errorf("line %d: sample value %q does not parse: %v", lineNo, value, err)
		}
		fam, isBucket := baseFamily(name, typeSeen)
		if _, ok := typeSeen[fam]; !ok {
			return fmt.Errorf("line %d: sample %q has no preceding # TYPE", lineNo, name)
		}
		if !helpSeen[fam] {
			return fmt.Errorf("line %d: sample %q has no preceding # HELP", lineNo, name)
		}
		if isBucket {
			if _, ok := labelValue(labels, "le"); !ok {
				return fmt.Errorf("line %d: histogram bucket %q without le label", lineNo, name)
			}
		}
		key := seriesKey(name, labels)
		if seriesSeen[key] {
			return fmt.Errorf("line %d: duplicate series %s", lineNo, key)
		}
		seriesSeen[key] = true
	}
	return nil
}

// baseFamily maps a sample name to its declared family, resolving histogram
// sample suffixes, and reports whether the sample is a _bucket line.
func baseFamily(name string, typeSeen map[string]Type) (string, bool) {
	if _, ok := typeSeen[name]; ok {
		return name, false
	}
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		base, ok := strings.CutSuffix(name, suffix)
		if !ok {
			continue
		}
		if t, declared := typeSeen[base]; declared && (t == TypeHistogram || t == "summary") {
			return base, suffix == "_bucket"
		}
	}
	return name, false
}

type sampleLabel struct{ name, value string }

func labelValue(labels []sampleLabel, name string) (string, bool) {
	for _, l := range labels {
		if l.name == name {
			return l.value, true
		}
	}
	return "", false
}

// seriesKey canonicalizes one series identity: name plus sorted labels.
func seriesKey(name string, labels []sampleLabel) string {
	parts := make([]string, len(labels))
	for i, l := range labels {
		parts[i] = l.name + "=" + strconv.Quote(l.value)
	}
	sort.Strings(parts)
	return name + "{" + strings.Join(parts, ",") + "}"
}

// parseSample splits one sample line into name, labels and value text.
func parseSample(line string) (string, []sampleLabel, string, error) {
	rest := line
	i := strings.IndexAny(rest, "{ ")
	if i < 0 {
		return "", nil, "", fmt.Errorf("malformed sample line %q", line)
	}
	name := rest[:i]
	if !validMetricName(name) {
		return "", nil, "", fmt.Errorf("invalid metric name %q", name)
	}
	var labels []sampleLabel
	if rest[i] == '{' {
		rest = rest[i+1:]
		for {
			rest = strings.TrimLeft(rest, " ")
			if strings.HasPrefix(rest, "}") {
				rest = rest[1:]
				break
			}
			eq := strings.Index(rest, "=")
			if eq < 0 {
				return "", nil, "", fmt.Errorf("malformed labels in %q", line)
			}
			lname := strings.TrimSpace(rest[:eq])
			if !validLabelName(lname) && lname != "le" {
				return "", nil, "", fmt.Errorf("invalid label name %q", lname)
			}
			rest = rest[eq+1:]
			if !strings.HasPrefix(rest, `"`) {
				return "", nil, "", fmt.Errorf("unquoted label value in %q", line)
			}
			value, remainder, err := scanQuoted(rest)
			if err != nil {
				return "", nil, "", fmt.Errorf("%v in %q", err, line)
			}
			labels = append(labels, sampleLabel{lname, value})
			rest = strings.TrimLeft(remainder, " ")
			if strings.HasPrefix(rest, ",") {
				rest = rest[1:]
			}
		}
	} else {
		rest = rest[i:]
	}
	value := strings.TrimSpace(rest)
	// A sample line may carry an optional trailing timestamp; the value is
	// the first field.
	if sp := strings.IndexByte(value, ' '); sp >= 0 {
		value = value[:sp]
	}
	if value == "" {
		return "", nil, "", fmt.Errorf("sample %q has no value", line)
	}
	return name, labels, value, nil
}

// scanQuoted consumes a leading double-quoted, backslash-escaped string and
// returns its unescaped content plus the remainder of the input.
func scanQuoted(s string) (string, string, error) {
	var b strings.Builder
	for i := 1; i < len(s); i++ {
		switch s[i] {
		case '\\':
			if i+1 >= len(s) {
				return "", "", fmt.Errorf("dangling escape")
			}
			i++
			switch s[i] {
			case 'n':
				b.WriteByte('\n')
			case '\\', '"':
				b.WriteByte(s[i])
			default:
				return "", "", fmt.Errorf("unknown escape \\%c", s[i])
			}
		case '"':
			return b.String(), s[i+1:], nil
		default:
			b.WriteByte(s[i])
		}
	}
	return "", "", fmt.Errorf("unterminated label value")
}
