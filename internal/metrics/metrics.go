// Package metrics is a dependency-free metrics registry with Prometheus
// text-format exposition (the 0.0.4 wire format every Prometheus-compatible
// scraper understands). It exists so the serving layer, the synthesis
// pipeline and the batch limiter export one coherent operational surface at
// GET /v1/metrics without pulling a client library into the module.
//
// Two registration styles cover the two kinds of state in this codebase:
//
//   - owned instruments (Counter, Gauge, Histogram, and their labeled Vec
//     forms) for new counters the observability layer itself maintains, e.g.
//     error counts by envelope code;
//   - collector funcs (CounterFunc, GaugeVecFunc, HistogramVecFunc, ...)
//     that read existing atomics at scrape time — the per-endpoint request
//     counters, the batch limiter, the corpus registry and the worker pool
//     already count everything; re-counting them would invite drift.
//
// A Registry rejects duplicate family names at registration, so the
// exposition can never carry duplicate # TYPE blocks — one half of the
// lint contract Lint checks end to end.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Type is a Prometheus metric family type.
type Type string

const (
	TypeCounter   Type = "counter"
	TypeGauge     Type = "gauge"
	TypeHistogram Type = "histogram"
)

// Sample is one series of a family at scrape time: the label values (in the
// family's label-name order) and either a scalar Value (counter, gauge) or a
// Hist snapshot (histogram).
type Sample struct {
	LabelValues []string
	Value       float64
	Hist        *HistogramSnapshot
}

// HistogramSnapshot is a cumulative-bucket histogram observation set, the
// shape the exposition format wants: Cumulative[i] counts observations ≤
// Bounds[i], Count counts all observations (the implicit +Inf bucket), and
// Sum totals them.
type HistogramSnapshot struct {
	// Bounds are the ascending `le` upper bounds, in the observed unit
	// (seconds for latency histograms).
	Bounds []float64
	// Cumulative[i] counts observations ≤ Bounds[i].
	Cumulative []int64
	// Count is the total number of observations (the +Inf bucket).
	Count int64
	// Sum is the total of all observed values.
	Sum float64
}

// family is one registered metric family: fixed metadata plus a collect
// callback invoked at scrape time.
type family struct {
	name    string
	help    string
	typ     Type
	labels  []string
	collect func(emit func(Sample))
}

// Registry holds metric families and renders them as one text exposition.
// All methods are safe for concurrent use; registration panics on duplicate
// or malformed names because both are programming errors, not runtime
// conditions.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
}

// New returns an empty Registry.
func New() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// register installs a family, enforcing name/label validity and uniqueness.
func (r *Registry) register(name, help string, typ Type, labels []string, collect func(emit func(Sample))) {
	if !validMetricName(name) {
		panic(fmt.Sprintf("metrics: invalid metric name %q", name))
	}
	for _, l := range labels {
		if !validLabelName(l) {
			panic(fmt.Sprintf("metrics: invalid label name %q on %q", l, name))
		}
		if typ == TypeHistogram && l == "le" {
			panic(fmt.Sprintf("metrics: label %q on histogram %q collides with the bucket label", l, name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.families[name]; dup {
		panic(fmt.Sprintf("metrics: duplicate metric family %q", name))
	}
	r.families[name] = &family{name: name, help: help, typ: typ, labels: labels, collect: collect}
}

// snapshot returns the registered families sorted by name.
func (r *Registry) snapshot() []*family {
	r.mu.RLock()
	out := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		out = append(out, f)
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// ---- owned scalar instruments ----

// Counter is a monotonically increasing integer counter. The zero value is
// not registered; obtain one from Registry.Counter or CounterVec.With.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n; negative increments are ignored (counters are monotonic).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a settable float value.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the gauge by delta.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+delta)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is an owned cumulative-bucket histogram. Observe is a bucket
// search plus two atomic adds; use it for values that do not already flow
// through an internal/latency.Histogram (those adapt via LatencySnapshot).
type Histogram struct {
	bounds  []float64
	buckets []atomic.Int64 // per-bucket (non-cumulative) counts
	count   atomic.Int64
	sumBits atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// First bucket whose bound contains v; values above every bound land
	// only in the implicit +Inf bucket (count/sum).
	i := sort.SearchFloat64s(h.bounds, v)
	if i < len(h.bounds) {
		h.buckets[i].Add(1)
	}
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Snapshot returns the cumulative view of the histogram.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds:     h.bounds,
		Cumulative: make([]int64, len(h.bounds)),
		Count:      h.count.Load(),
		Sum:        math.Float64frombits(h.sumBits.Load()),
	}
	var cum int64
	for i := range h.buckets {
		cum += h.buckets[i].Load()
		s.Cumulative[i] = cum
	}
	return s
}

// ---- registration helpers ----

// Counter registers and returns an owned counter family with no labels.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{}
	r.register(name, help, TypeCounter, nil, func(emit func(Sample)) {
		emit(Sample{Value: float64(c.Value())})
	})
	return c
}

// Gauge registers and returns an owned gauge family with no labels.
func (r *Registry) Gauge(name, help string) *Gauge {
	g := &Gauge{}
	r.register(name, help, TypeGauge, nil, func(emit func(Sample)) {
		emit(Sample{Value: g.Value()})
	})
	return g
}

// Histogram registers and returns an owned histogram family with the given
// ascending bucket bounds.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	if !sort.Float64sAreSorted(bounds) {
		panic(fmt.Sprintf("metrics: histogram %q bounds must ascend", name))
	}
	h := &Histogram{bounds: append([]float64(nil), bounds...), buckets: make([]atomic.Int64, len(bounds))}
	r.register(name, help, TypeHistogram, nil, func(emit func(Sample)) {
		s := h.Snapshot()
		emit(Sample{Hist: &s})
	})
	return h
}

// CounterFunc registers a counter family whose single unlabeled value is
// read from fn at scrape time — the adapter for pre-existing atomics.
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	r.register(name, help, TypeCounter, nil, func(emit func(Sample)) {
		emit(Sample{Value: fn()})
	})
}

// GaugeFunc registers a gauge family read from fn at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(name, help, TypeGauge, nil, func(emit func(Sample)) {
		emit(Sample{Value: fn()})
	})
}

// CounterVecFunc registers a labeled counter family whose series are
// enumerated at scrape time: collect must call emit once per live series,
// with label values in the declared order. Use it when the series set is
// dynamic (e.g. per-corpus counters where corpora come and go).
func (r *Registry) CounterVecFunc(name, help string, labels []string, collect func(emit func(labelValues []string, v float64))) {
	r.register(name, help, TypeCounter, labels, scalarCollector(name, labels, collect))
}

// GaugeVecFunc is CounterVecFunc for gauges.
func (r *Registry) GaugeVecFunc(name, help string, labels []string, collect func(emit func(labelValues []string, v float64))) {
	r.register(name, help, TypeGauge, labels, scalarCollector(name, labels, collect))
}

// HistogramVecFunc registers a labeled histogram family whose per-series
// snapshots are produced at scrape time.
func (r *Registry) HistogramVecFunc(name, help string, labels []string, collect func(emit func(labelValues []string, h HistogramSnapshot))) {
	r.register(name, help, TypeHistogram, labels, func(emit func(Sample)) {
		collect(func(values []string, h HistogramSnapshot) {
			if len(values) != len(labels) {
				panic(fmt.Sprintf("metrics: %q emitted %d label values, want %d", name, len(values), len(labels)))
			}
			hh := h
			emit(Sample{LabelValues: values, Hist: &hh})
		})
	})
}

func scalarCollector(name string, labels []string, collect func(emit func(labelValues []string, v float64))) func(emit func(Sample)) {
	return func(emit func(Sample)) {
		collect(func(values []string, v float64) {
			if len(values) != len(labels) {
				panic(fmt.Sprintf("metrics: %q emitted %d label values, want %d", name, len(values), len(labels)))
			}
			emit(Sample{LabelValues: values, Value: v})
		})
	}
}

// ---- owned labeled instruments ----

// CounterVec is a labeled counter family whose children are created on
// first use and live forever (the exposition must not lose a series once it
// reported it).
type CounterVec struct {
	labels   []string
	mu       sync.Mutex
	children map[string]*vecChild
}

type vecChild struct {
	values []string
	c      Counter
}

// CounterVec registers a labeled counter family with owned children.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	v := &CounterVec{labels: labels, children: make(map[string]*vecChild)}
	r.register(name, help, TypeCounter, labels, func(emit func(Sample)) {
		for _, ch := range v.sorted() {
			emit(Sample{LabelValues: ch.values, Value: float64(ch.c.Value())})
		}
	})
	return v
}

// With returns the child counter for the given label values (created on
// first use), which must match the declared label count.
func (v *CounterVec) With(values ...string) *Counter {
	if len(values) != len(v.labels) {
		panic(fmt.Sprintf("metrics: CounterVec.With got %d label values, want %d", len(values), len(v.labels)))
	}
	key := strings.Join(values, "\x00")
	v.mu.Lock()
	defer v.mu.Unlock()
	ch, ok := v.children[key]
	if !ok {
		ch = &vecChild{values: append([]string(nil), values...)}
		v.children[key] = ch
	}
	return &ch.c
}

// sorted returns children in deterministic (key-sorted) order.
func (v *CounterVec) sorted() []*vecChild {
	v.mu.Lock()
	keys := make([]string, 0, len(v.children))
	for k := range v.children {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]*vecChild, len(keys))
	for i, k := range keys {
		out[i] = v.children[k]
	}
	v.mu.Unlock()
	return out
}

// ---- name validation ----

// validMetricName reports whether name matches [a-zA-Z_:][a-zA-Z0-9_:]*.
func validMetricName(name string) bool {
	if name == "" {
		return false
	}
	for i := 0; i < len(name); i++ {
		b := name[i]
		switch {
		case b >= 'a' && b <= 'z', b >= 'A' && b <= 'Z', b == '_', b == ':':
		case b >= '0' && b <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// validLabelName reports whether name matches [a-zA-Z_][a-zA-Z0-9_]* and is
// not reserved (double-underscore prefix).
func validLabelName(name string) bool {
	if name == "" || strings.HasPrefix(name, "__") {
		return false
	}
	for i := 0; i < len(name); i++ {
		b := name[i]
		switch {
		case b >= 'a' && b <= 'z', b >= 'A' && b <= 'Z', b == '_':
		case b >= '0' && b <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}
