package metrics

import (
	"mapsynth/internal/latency"
)

// The serving layer's hot-path latency counters are internal/latency
// power-of-two-microsecond histograms: bucket i holds observations in
// [2^i, 2^(i+1)) µs (bucket 0 additionally holds 0). Prometheus wants
// cumulative `le` buckets in seconds. Because every observation is a whole
// number of microseconds, the inclusive upper bound of bucket i is exactly
// (2^(i+1) − 1) µs, so using those bounds makes the conversion lossless:
// cumulative-through-bucket-i equals the count of observations ≤ le_i, with
// no boundary value ever misattributed.

// latencyBounds are the 40 `le` upper bounds, in seconds.
var latencyBounds = func() []float64 {
	bounds := make([]float64, latency.NumBuckets)
	for i := range bounds {
		bounds[i] = float64((uint64(1)<<(i+1))-1) / 1e6
	}
	return bounds
}()

// LatencyBounds returns the `le` upper bounds (seconds) that LatencySnapshot
// emits, for callers that pre-declare bucket layouts.
func LatencyBounds() []float64 {
	return append([]float64(nil), latencyBounds...)
}

// LatencySnapshot converts one latency.Histogram into the cumulative-bucket
// form the exposition format wants. The conversion reads each atomic bucket
// once; under concurrent observation the snapshot is per-bucket atomic,
// matching the consistency the source histogram itself offers.
func LatencySnapshot(h *latency.Histogram) HistogramSnapshot {
	buckets, count, sumMicros := h.Buckets()
	s := HistogramSnapshot{
		Bounds:     latencyBounds,
		Cumulative: make([]int64, len(buckets)),
		Count:      count,
		Sum:        float64(sumMicros) / 1e6,
	}
	var cum int64
	for i, b := range buckets {
		cum += b
		s.Cumulative[i] = cum
	}
	return s
}
