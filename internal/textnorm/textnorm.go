// Package textnorm normalizes cell values before comparison.
//
// Real table cells carry syntactic noise that must not defeat value-based
// matching: inconsistent letter case, surrounding whitespace, punctuation
// variants ("Korea, Republic of" vs "Korea Republic of"), and extraneous
// artifacts such as footnote marks ("Algeria[1]", see Figure 2 in the paper).
// Normalize strips all of these so exact-match blocking catches most true
// matches cheaply; the remaining variation is handled by approximate string
// matching in package strmatch.
package textnorm

import (
	"strings"
	"unicode"
)

// Normalize canonicalizes a cell value for comparison: it lower-cases the
// value, removes footnote marks like "[1]" or "[a]", replaces punctuation
// with spaces, and collapses runs of whitespace. The empty string normalizes
// to itself.
func Normalize(s string) string {
	if s == "" {
		return ""
	}
	s = stripFootnotes(s)
	var b strings.Builder
	b.Grow(len(s))
	prevSpace := true // true suppresses a leading space
	for _, r := range s {
		switch {
		case unicode.IsLetter(r) || unicode.IsDigit(r):
			b.WriteRune(unicode.ToLower(r))
			prevSpace = false
		default:
			// Punctuation and whitespace both act as separators.
			if !prevSpace {
				b.WriteByte(' ')
				prevSpace = true
			}
		}
	}
	return strings.TrimRight(b.String(), " ")
}

// stripFootnotes removes bracketed footnote markers such as "[1]", "[a]",
// "[note 2]" anywhere in the value. Unbalanced brackets are left untouched.
func stripFootnotes(s string) string {
	if !strings.ContainsRune(s, '[') {
		return s
	}
	var b strings.Builder
	b.Grow(len(s))
	depth := 0
	for _, r := range s {
		switch r {
		case '[':
			depth++
		case ']':
			if depth > 0 {
				depth--
				continue
			}
			b.WriteRune(r)
		default:
			if depth == 0 {
				b.WriteRune(r)
			}
		}
	}
	if depth != 0 {
		// Unbalanced: be conservative and return the original.
		return s
	}
	return b.String()
}

// NormalizePair normalizes both sides of a (left, right) value pair and
// reports whether the left side survived normalization (a pair whose left
// normalizes to the empty string is useless for mapping synthesis).
func NormalizePair(l, r string) (nl, nr string, ok bool) {
	nl = Normalize(l)
	nr = Normalize(r)
	return nl, nr, nl != ""
}

// PairKey builds a single collision-free string key for a normalized value
// pair, suitable as a map key or blocking token. The separator byte 0x1f
// (unit separator) cannot appear in normalized values.
func PairKey(nl, nr string) string {
	return nl + "\x1f" + nr
}

// SplitPairKey splits a key built by PairKey back into its two halves.
func SplitPairKey(key string) (nl, nr string) {
	i := strings.IndexByte(key, 0x1f)
	if i < 0 {
		return key, ""
	}
	return key[:i], key[i+1:]
}
