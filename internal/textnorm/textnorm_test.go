package textnorm

import (
	"testing"
	"testing/quick"
	"unicode"
)

func TestNormalizeBasic(t *testing.T) {
	cases := []struct {
		in, want string
	}{
		{"", ""},
		{"USA", "usa"},
		{"  South  Korea ", "south korea"},
		{"Korea, Republic of", "korea republic of"},
		{"Korea (South)", "korea south"},
		{"Algeria[1]", "algeria"},
		{"Algeria[note 2]", "algeria"},
		{"American Samoa (US)", "american samoa us"},
		{"U.S.A.", "u s a"},
		{"Côte d'Ivoire", "côte d ivoire"},
		{"washington, d.c.", "washington d c"},
		{"  ", ""},
		{"---", ""},
		{"a-b", "a b"},
		{"3.5", "3 5"},
	}
	for _, c := range cases {
		if got := Normalize(c.in); got != c.want {
			t.Errorf("Normalize(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestNormalizeIdempotent(t *testing.T) {
	f := func(s string) bool {
		once := Normalize(s)
		return Normalize(once) == once
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNormalizeOutputAlphabet(t *testing.T) {
	// Property: normalized output contains only lowercase letters, digits
	// and single interior spaces.
	f := func(s string) bool {
		n := Normalize(s)
		if n == "" {
			return true
		}
		if n[0] == ' ' || n[len(n)-1] == ' ' {
			return false
		}
		prevSpace := false
		for _, r := range n {
			switch {
			case r == ' ':
				if prevSpace {
					return false
				}
				prevSpace = true
			case unicode.IsDigit(r):
				prevSpace = false
			case unicode.IsLetter(r):
				// Letters must be lowercased where a lowercase mapping
				// exists (some Unicode capitals have none).
				if unicode.ToLower(r) != r {
					return false
				}
				prevSpace = false
			default:
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStripFootnotesUnbalanced(t *testing.T) {
	// Unbalanced brackets leave the value untouched (conservative).
	if got := stripFootnotes("abc[1"); got != "abc[1" {
		t.Errorf("unbalanced open: got %q", got)
	}
	if got := stripFootnotes("abc]1"); got != "abc]1" {
		t.Errorf("stray close: got %q", got)
	}
	if got := stripFootnotes("a[b[c]]d"); got != "ad" {
		t.Errorf("nested: got %q", got)
	}
}

func TestNormalizePair(t *testing.T) {
	nl, nr, ok := NormalizePair("  Japan ", "JPN[2]")
	if !ok || nl != "japan" || nr != "jpn" {
		t.Errorf("NormalizePair = (%q, %q, %v)", nl, nr, ok)
	}
	_, _, ok = NormalizePair("---", "x")
	if ok {
		t.Error("pair with empty normalized left should be rejected")
	}
}

func TestPairKeyRoundTrip(t *testing.T) {
	f := func(a, b string) bool {
		na, nb := Normalize(a), Normalize(b)
		l, r := SplitPairKey(PairKey(na, nb))
		return l == na && r == nb
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPairKeyNoCollision(t *testing.T) {
	// ("a b", "c") must differ from ("a", "b c").
	if PairKey("a b", "c") == PairKey("a", "b c") {
		t.Error("pair keys collide across boundary shifts")
	}
}
