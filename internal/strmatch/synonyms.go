package strmatch

// SynonymFeed is an external synonym source (Section 4.1, "Synonyms"). The
// paper boosts positive compatibility and suppresses spurious conflicts when
// two values are known synonyms from feeds such as [10]. Synonymy is stored
// over normalized values and is transitive within a synonym group.
type SynonymFeed struct {
	group map[string]int // normalized value -> group id
	next  int
}

// NewSynonymFeed returns an empty feed.
func NewSynonymFeed() *SynonymFeed {
	return &SynonymFeed{group: make(map[string]int)}
}

// AddGroup records that all the given normalized values are mutually
// synonymous. Values already known are merged into the same group
// transitively: adding {a,b} then {b,c} makes a and c synonyms.
func (s *SynonymFeed) AddGroup(values ...string) {
	if len(values) == 0 {
		return
	}
	gid := -1
	for _, v := range values {
		if g, ok := s.group[v]; ok {
			if gid == -1 {
				gid = g
			} else if g != gid {
				// Merge g into gid.
				for k, kg := range s.group {
					if kg == g {
						s.group[k] = gid
					}
				}
			}
		}
	}
	if gid == -1 {
		gid = s.next
		s.next++
	}
	for _, v := range values {
		s.group[v] = gid
	}
}

// AreSynonyms reports whether two normalized values belong to the same
// synonym group. Equal values are always synonyms.
func (s *SynonymFeed) AreSynonyms(a, b string) bool {
	if a == b {
		return true
	}
	ga, ok := s.group[a]
	if !ok {
		return false
	}
	gb, ok := s.group[b]
	return ok && ga == gb
}

// Len returns the number of values known to the feed.
func (s *SynonymFeed) Len() int { return len(s.group) }
