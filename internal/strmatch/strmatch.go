// Package strmatch implements approximate string matching between cell
// values (Section 4.1 and Appendix B of the paper).
//
// Values from different tables often differ by minor syntactic variation
// ("Korea, Republic of" vs "Korea Republic", "American Samoa" vs
// "American Samoa (US)"). Two values are considered a match when their edit
// distance does not exceed a fractional, length-aware threshold
//
//	θed(v1, v2) = min{⌊|v1|·fed⌋, ⌊|v2|·fed⌋, ked}
//
// so short codes like "USA" require an exact match while long names tolerate
// a few edits. Distances are computed with a banded dynamic program in the
// spirit of Ukkonen's algorithm: only the diagonal band of width θed of the
// DP matrix is filled, making a single comparison O(θed · min{|v1|, |v2|}).
package strmatch

import "mapsynth/internal/textnorm"

// DefaultFracEd is the paper's fractional edit-distance threshold fed.
const DefaultFracEd = 0.2

// DefaultKEd is the paper's absolute cap ked on the edit-distance threshold.
const DefaultKEd = 10

// Matcher decides whether two cell values match approximately. It combines
// the fractional banded edit distance with an optional synonym feed. The
// zero value is not usable; construct with NewMatcher.
type Matcher struct {
	fracEd float64
	kEd    int
	syn    *SynonymFeed
}

// NewMatcher returns a Matcher with the given fractional threshold fed and
// absolute cap ked. Passing fed <= 0 or ked < 0 selects the paper defaults
// (0.2 and 10).
func NewMatcher(fracEd float64, kEd int) *Matcher {
	if fracEd <= 0 {
		fracEd = DefaultFracEd
	}
	if kEd < 0 {
		kEd = DefaultKEd
	}
	return &Matcher{fracEd: fracEd, kEd: kEd}
}

// SetSynonyms attaches a synonym feed; values known to be synonyms match
// regardless of edit distance. A nil feed detaches synonyms.
func (m *Matcher) SetSynonyms(s *SynonymFeed) { m.syn = s }

// Threshold returns θed for a pair of already-normalized values:
// min{⌊|v1|·fed⌋, ⌊|v2|·fed⌋, ked}. Lengths are in runes.
func (m *Matcher) Threshold(v1, v2 string) int {
	l1 := len([]rune(v1))
	l2 := len([]rune(v2))
	t1 := int(float64(l1) * m.fracEd)
	t2 := int(float64(l2) * m.fracEd)
	t := t1
	if t2 < t {
		t = t2
	}
	if m.kEd < t {
		t = m.kEd
	}
	return t
}

// MatchNormalized reports whether two already-normalized values match:
// either exactly, via the synonym feed, or within the banded edit-distance
// threshold.
func (m *Matcher) MatchNormalized(v1, v2 string) bool {
	if v1 == v2 {
		return true
	}
	if m.syn != nil && m.syn.AreSynonyms(v1, v2) {
		return true
	}
	t := m.Threshold(v1, v2)
	if t == 0 {
		return false
	}
	return WithinDistance(v1, v2, t)
}

// Match normalizes both values (case, punctuation, footnotes) and then
// applies MatchNormalized.
func (m *Matcher) Match(v1, v2 string) bool {
	return m.MatchNormalized(textnorm.Normalize(v1), textnorm.Normalize(v2))
}

// WithinDistance reports whether the Levenshtein distance between a and b is
// at most maxDist, using a banded DP (Algorithm 2 in the paper) that fills
// only cells within maxDist of the diagonal. It runs in
// O(maxDist · min{|a|, |b|}) time and O(min{|a|,|b|}) space.
func WithinDistance(a, b string, maxDist int) bool {
	if maxDist < 0 {
		return false
	}
	ra, rb := []rune(a), []rune(b)
	if len(ra) > len(rb) {
		ra, rb = rb, ra
	}
	// ra is the shorter string. A length gap beyond the band cannot match.
	if len(rb)-len(ra) > maxDist {
		return false
	}
	if maxDist == 0 {
		return string(ra) == string(rb)
	}
	n, m2 := len(ra), len(rb)
	// prev[j] and cur[j] hold DP rows indexed by position in rb (0..m2).
	// Cells outside the band are sentinel (maxDist + 1): "too far".
	const pad = 1
	inf := maxDist + pad
	prev := make([]int, m2+1)
	cur := make([]int, m2+1)
	for j := 0; j <= m2; j++ {
		if j <= maxDist {
			prev[j] = j
		} else {
			prev[j] = inf
		}
	}
	for i := 1; i <= n; i++ {
		lo := i - maxDist
		if lo < 1 {
			lo = 1
		}
		hi := i + maxDist
		if hi > m2 {
			hi = m2
		}
		// Left edge of the band.
		if lo == 1 {
			if i <= maxDist {
				cur[0] = i
			} else {
				cur[0] = inf
			}
		}
		if lo > 1 {
			cur[lo-1] = inf
		}
		rowMin := inf
		for j := lo; j <= hi; j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			best := prev[j-1] + cost        // substitution or match
			if d := prev[j] + 1; d < best { // deletion from ra
				best = d
			}
			if d := cur[j-1] + 1; d < best { // insertion into ra
				best = d
			}
			if best > inf {
				best = inf
			}
			cur[j] = best
			if best < rowMin {
				rowMin = best
			}
		}
		if hi < m2 {
			cur[hi+1] = inf
		}
		if rowMin > maxDist {
			return false // the whole band exceeded the threshold
		}
		prev, cur = cur, prev
	}
	return prev[m2] <= maxDist
}

// Distance computes the exact Levenshtein distance between a and b with the
// classic full dynamic program. It is O(|a|·|b|) and intended for tests and
// small inputs; hot paths use WithinDistance.
func Distance(a, b string) int {
	ra, rb := []rune(a), []rune(b)
	if len(ra) == 0 {
		return len(rb)
	}
	if len(rb) == 0 {
		return len(ra)
	}
	prev := make([]int, len(rb)+1)
	cur := make([]int, len(rb)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(ra); i++ {
		cur[0] = i
		for j := 1; j <= len(rb); j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			best := prev[j-1] + cost
			if d := prev[j] + 1; d < best {
				best = d
			}
			if d := cur[j-1] + 1; d < best {
				best = d
			}
			cur[j] = best
		}
		prev, cur = cur, prev
	}
	return prev[len(rb)]
}
