package strmatch

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestDistanceBasic(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"a", "", 1},
		{"", "abc", 3},
		{"kitten", "sitting", 3},
		{"flaw", "lawn", 2},
		{"usa", "usa", 0},
		{"usa", "rsa", 1},
		{"korea republic of", "korea republic", 3},
	}
	for _, c := range cases {
		if got := Distance(c.a, c.b); got != c.want {
			t.Errorf("Distance(%q, %q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestWithinDistanceAgreesWithFullDP(t *testing.T) {
	// Property: the banded check agrees with the exact distance for all
	// thresholds on random short strings.
	rng := rand.New(rand.NewSource(7))
	alphabet := "abcd"
	randStr := func() string {
		n := rng.Intn(12)
		var b strings.Builder
		for i := 0; i < n; i++ {
			b.WriteByte(alphabet[rng.Intn(len(alphabet))])
		}
		return b.String()
	}
	for i := 0; i < 3000; i++ {
		a, b := randStr(), randStr()
		d := Distance(a, b)
		for _, th := range []int{0, 1, 2, 3, 5, 8} {
			got := WithinDistance(a, b, th)
			want := d <= th
			if got != want {
				t.Fatalf("WithinDistance(%q, %q, %d) = %v, exact distance %d", a, b, th, got, d)
			}
		}
	}
}

func TestWithinDistanceNegativeThreshold(t *testing.T) {
	if WithinDistance("a", "a", -1) {
		t.Error("negative threshold must never match")
	}
}

func TestDistanceSymmetric(t *testing.T) {
	f := func(a, b string) bool {
		if len(a) > 40 || len(b) > 40 {
			return true
		}
		return Distance(a, b) == Distance(b, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDistanceTriangleInequality(t *testing.T) {
	f := func(a, b, c string) bool {
		if len(a) > 20 || len(b) > 20 || len(c) > 20 {
			return true
		}
		return Distance(a, c) <= Distance(a, b)+Distance(b, c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMatcherThreshold(t *testing.T) {
	m := NewMatcher(0.2, 10)
	// Paper's Example 8: θed("american samoa", "american samoa (us)") = 2.
	th := m.Threshold("american samoa", "american samoa us")
	if th != 2 {
		t.Errorf("Threshold = %d, want 2", th)
	}
	// Short codes require exact matches.
	if m.Threshold("usa", "rsa") != 0 {
		t.Errorf("short codes should have zero threshold")
	}
	if m.MatchNormalized("usa", "rsa") {
		t.Error("USA must not match RSA")
	}
}

func TestMatcherApproximate(t *testing.T) {
	m := NewMatcher(0.2, 10)
	// Punctuation-only variation disappears in normalization.
	if !m.Match("Korea, Republic of", "Korea Republic of") {
		t.Error("punctuation variants should match")
	}
	// Small suffix variation within the fractional threshold.
	if !m.Match("Stockholm Arlanda Airport", "Stockholm Arlanda Airports") {
		t.Error("1-edit variation of a long name should match")
	}
	// The paper's Example-8 pair needs a slightly looser fraction because
	// our normalization keeps the separating space ("american samoa" vs
	// "american samoa us" is distance 3).
	loose := NewMatcher(0.25, 10)
	if !loose.Match("American Samoa", "American Samoa (US)") {
		t.Error("decorated variant should match at fed=0.25")
	}
	if m.Match("Austria", "Australia") {
		t.Error("Austria must not match Australia (distance 3 > threshold 1)")
	}
}

func TestMatcherKEdCap(t *testing.T) {
	m := NewMatcher(0.5, 2) // high fraction, tight cap
	long1 := strings.Repeat("a", 40)
	long2 := strings.Repeat("a", 37) + "bbb"
	if m.MatchNormalized(long1, long2) {
		t.Error("cap ked=2 must reject distance-3 pairs")
	}
}

func TestMatcherDefaults(t *testing.T) {
	m := NewMatcher(0, -1)
	if m.fracEd != DefaultFracEd || m.kEd != DefaultKEd {
		t.Errorf("defaults not applied: %v %v", m.fracEd, m.kEd)
	}
}

func TestSynonymFeed(t *testing.T) {
	s := NewSynonymFeed()
	s.AddGroup("us virgin islands", "united states virgin islands")
	s.AddGroup("united states virgin islands", "virgin islands of the united states")
	if !s.AreSynonyms("us virgin islands", "virgin islands of the united states") {
		t.Error("synonymy should be transitive across group merges")
	}
	if s.AreSynonyms("us virgin islands", "british virgin islands") {
		t.Error("unrelated values must not be synonyms")
	}
	if !s.AreSynonyms("x", "x") {
		t.Error("equal values are always synonyms")
	}

	m := NewMatcher(0.2, 10)
	m.SetSynonyms(s)
	if !m.MatchNormalized("us virgin islands", "virgin islands of the united states") {
		t.Error("matcher should honor the synonym feed")
	}
}

func TestSynonymFeedMergeGroups(t *testing.T) {
	s := NewSynonymFeed()
	s.AddGroup("a", "b")
	s.AddGroup("c", "d")
	s.AddGroup("b", "c") // merges both groups
	if !s.AreSynonyms("a", "d") {
		t.Error("group merge failed")
	}
	if s.Len() != 4 {
		t.Errorf("Len = %d, want 4", s.Len())
	}
}
