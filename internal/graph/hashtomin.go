package graph

import (
	"sort"
	"strconv"

	"mapsynth/internal/mapreduce"
)

// HashToMinComponents computes connected components with the Hash-to-Min
// algorithm of Rastogi et al. [13], expressed as iterated mapreduce rounds,
// exactly as the paper scales component discovery (Appendix F).
//
// Every vertex starts with a cluster containing itself and its neighbors.
// Each round, every vertex v sends its cluster's minimum m to all members of
// its cluster, and its whole cluster to m. Clusters converge in O(log n)
// rounds to: the component minimum holds the full component, every other
// member holds just the minimum. The result matches ConnectedComponents.
func (g *Graph) HashToMinComponents(cfg mapreduce.Config) [][]int {
	// cluster[v] is v's current cluster, sorted ascending.
	cluster := make([][]int, g.n)
	for v := 0; v < g.n; v++ {
		c := append([]int{v}, g.adj[v]...)
		sort.Ints(c)
		cluster[v] = dedupSorted(c)
	}
	inputs := make([]interface{}, g.n)
	for {
		for v := 0; v < g.n; v++ {
			inputs[v] = v
		}
		changed := false
		// Map: emit (member, min) for all members, and (min, cluster).
		m := func(in interface{}, emit func(string, interface{})) {
			v := in.(int)
			c := cluster[v]
			if len(c) == 0 {
				return
			}
			minV := c[0]
			for _, u := range c {
				emit(strconv.Itoa(u), minV)
			}
			emit(strconv.Itoa(minV), c)
		}
		// Reduce: new cluster of v is the union of everything received.
		r := func(key string, values []interface{}, emit func(interface{})) {
			v, _ := strconv.Atoi(key)
			var merged []int
			for _, val := range values {
				switch x := val.(type) {
				case int:
					merged = append(merged, x)
				case []int:
					merged = append(merged, x...)
				}
			}
			merged = append(merged, v)
			sort.Ints(merged)
			merged = dedupSorted(merged)
			emit([2]interface{}{v, merged})
		}
		outs := mapreduce.Run(inputs, m, r, cfg)
		next := make([][]int, g.n)
		for _, o := range outs {
			pair := o.([2]interface{})
			v := pair[0].(int)
			next[v] = pair[1].([]int)
		}
		for v := 0; v < g.n; v++ {
			if next[v] == nil {
				next[v] = cluster[v]
			}
			if !equalInts(next[v], cluster[v]) {
				changed = true
			}
		}
		cluster = next
		if !changed {
			break
		}
	}
	// Collect: vertex v owns a component iff min(cluster[v]) == v.
	var comps [][]int
	for v := 0; v < g.n; v++ {
		if len(cluster[v]) > 0 && cluster[v][0] == v {
			comps = append(comps, cluster[v])
		}
	}
	sort.Slice(comps, func(i, j int) bool { return comps[i][0] < comps[j][0] })
	return comps
}

func dedupSorted(s []int) []int {
	if len(s) < 2 {
		return s
	}
	out := s[:1]
	for _, v := range s[1:] {
		if v != out[len(out)-1] {
			out = append(out, v)
		}
	}
	return out
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
