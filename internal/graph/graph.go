// Package graph models the compatibility graph over candidate binary tables
// (Section 4.2) and computes its connected components, both directly with
// union-find and with the Hash-to-Min algorithm [13] over the mapreduce
// engine, mirroring the paper's scale-out strategy (Appendix F).
package graph

import "sort"

// Edge is one weighted edge of the compatibility graph. Pos carries the
// positive compatibility w+ (Equation 3) and Neg the negative
// incompatibility w- (Equation 4, a value <= 0). Either may be zero.
type Edge struct {
	A, B int // vertex ids with A < B
	Pos  float64
	Neg  float64
}

// Graph is an undirected weighted multigraph-free graph over dense vertex
// ids [0, N). Parallel edges are not allowed: AddEdge overwrites.
type Graph struct {
	n     int
	edges map[[2]int]*Edge
	adj   [][]int // adjacency lists of neighbor vertex ids
}

// New returns an empty graph over n vertices.
func New(n int) *Graph {
	return &Graph{
		n:     n,
		edges: make(map[[2]int]*Edge),
		adj:   make([][]int, n),
	}
}

// NumVertices returns the number of vertices.
func (g *Graph) NumVertices() int { return g.n }

// NumEdges returns the number of stored edges.
func (g *Graph) NumEdges() int { return len(g.edges) }

func edgeKey(a, b int) [2]int {
	if a > b {
		a, b = b, a
	}
	return [2]int{a, b}
}

// AddEdge inserts or overwrites the edge between a and b with the given
// weights. Self-loops are ignored.
func (g *Graph) AddEdge(a, b int, pos, neg float64) {
	if a == b {
		return
	}
	k := edgeKey(a, b)
	if _, exists := g.edges[k]; !exists {
		g.adj[k[0]] = append(g.adj[k[0]], k[1])
		g.adj[k[1]] = append(g.adj[k[1]], k[0])
	}
	g.edges[k] = &Edge{A: k[0], B: k[1], Pos: pos, Neg: neg}
}

// GetEdge returns the edge between a and b, or nil.
func (g *Graph) GetEdge(a, b int) *Edge {
	return g.edges[edgeKey(a, b)]
}

// Neighbors returns the vertex ids adjacent to v. The returned slice is
// shared; callers must not modify it.
func (g *Graph) Neighbors(v int) []int { return g.adj[v] }

// Edges returns all edges sorted by (A, B) for deterministic iteration.
func (g *Graph) Edges() []*Edge {
	out := make([]*Edge, 0, len(g.edges))
	for _, e := range g.edges {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		return out[i].B < out[j].B
	})
	return out
}

// StripNegative zeroes the negative weight of every edge in place. Used by
// the SynthesisPos ablation, which runs the pipeline without the FD-induced
// negative signal.
func (g *Graph) StripNegative() {
	for _, e := range g.edges {
		e.Neg = 0
	}
}

// ConnectedComponents partitions the vertices into components connected by
// any edge (positive or negative weight alike), using breadth-first search.
// Components are returned sorted by their smallest vertex, members ascending.
// Isolated vertices form singleton components.
func (g *Graph) ConnectedComponents() [][]int {
	visited := make([]bool, g.n)
	var comps [][]int
	queue := make([]int, 0, 64)
	for s := 0; s < g.n; s++ {
		if visited[s] {
			continue
		}
		visited[s] = true
		queue = queue[:0]
		queue = append(queue, s)
		comp := []int{s}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, u := range g.adj[v] {
				if !visited[u] {
					visited[u] = true
					queue = append(queue, u)
					comp = append(comp, u)
				}
			}
		}
		sort.Ints(comp)
		comps = append(comps, comp)
	}
	sort.Slice(comps, func(i, j int) bool { return comps[i][0] < comps[j][0] })
	return comps
}

// PositiveComponents is ConnectedComponents restricted to edges with
// positive weight at least minPos; vertices linked only by negative or weak
// edges fall into separate components. This mirrors the paper's
// divide-and-conquer step that groups tables "connected non-trivially by
// positive edges" before per-component synthesis.
func (g *Graph) PositiveComponents(minPos float64) [][]int {
	sub := New(g.n)
	for _, e := range g.edges {
		if e.Pos >= minPos && e.Pos > 0 {
			sub.AddEdge(e.A, e.B, e.Pos, e.Neg)
		}
	}
	return sub.ConnectedComponents()
}

// Subgraph extracts the induced subgraph over the given vertices. It returns
// the new graph (with dense ids 0..len(vertices)-1, in the order given) and
// the mapping from new id to original id.
func (g *Graph) Subgraph(vertices []int) (*Graph, []int) {
	idx := make(map[int]int, len(vertices))
	orig := make([]int, len(vertices))
	for i, v := range vertices {
		idx[v] = i
		orig[i] = v
	}
	sub := New(len(vertices))
	for _, e := range g.edges {
		ia, oka := idx[e.A]
		ib, okb := idx[e.B]
		if oka && okb {
			sub.AddEdge(ia, ib, e.Pos, e.Neg)
		}
	}
	return sub, orig
}
