package graph

// Component is one connected component of a Graph, materialized as an
// induced subgraph ready for independent processing. Sub uses dense vertex
// ids 0..len(Vertices)-1; Vertices[i] is the original id of Sub's vertex i,
// ascending, so Vertices[0] is the component's smallest original vertex.
type Component struct {
	Vertices []int
	Sub      *Graph
}

// Decompose partitions the graph into its connected components and builds
// every induced subgraph in a single pass over the edge set — O(V + E)
// total, unlike calling Subgraph per component which rescans all edges each
// time. Components are sorted by smallest original vertex, and within a
// component vertex order is ascending, matching ConnectedComponents.
//
// Components are independent by construction (no edge crosses them), which
// is what lets the pipeline engine run synthesis and conflict resolution
// per component in parallel with results identical to a monolithic pass.
func (g *Graph) Decompose() []Component {
	comps := g.ConnectedComponents()
	out := make([]Component, len(comps))
	// whichComp[v] / denseID[v]: component index and dense id of vertex v.
	whichComp := make([]int, g.n)
	denseID := make([]int, g.n)
	for ci, comp := range comps {
		out[ci] = Component{Vertices: comp, Sub: New(len(comp))}
		for di, v := range comp {
			whichComp[v] = ci
			denseID[v] = di
		}
	}
	for _, e := range g.edges {
		c := whichComp[e.A] // e.B is in the same component by definition
		out[c].Sub.AddEdge(denseID[e.A], denseID[e.B], e.Pos, e.Neg)
	}
	return out
}
