package graph

import (
	"math/rand"
	"testing"

	"mapsynth/internal/mapreduce"
)

func TestGraphBasics(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1, 0.5, 0)
	g.AddEdge(1, 0, 0.7, -0.1) // overwrite, normalized order
	g.AddEdge(2, 3, 0.2, 0)
	g.AddEdge(1, 1, 9, 9) // self-loop ignored
	if g.NumEdges() != 2 {
		t.Fatalf("NumEdges = %d, want 2", g.NumEdges())
	}
	e := g.GetEdge(1, 0)
	if e == nil || e.Pos != 0.7 || e.Neg != -0.1 {
		t.Errorf("GetEdge = %+v", e)
	}
	if g.GetEdge(0, 3) != nil {
		t.Error("absent edge should be nil")
	}
	if len(g.Neighbors(1)) != 1 {
		t.Errorf("Neighbors(1) = %v", g.Neighbors(1))
	}
}

func TestEdgesSorted(t *testing.T) {
	g := New(5)
	g.AddEdge(3, 4, 1, 0)
	g.AddEdge(0, 2, 1, 0)
	g.AddEdge(0, 1, 1, 0)
	es := g.Edges()
	if es[0].B != 1 || es[1].B != 2 || es[2].A != 3 {
		t.Errorf("edges not sorted: %v", es)
	}
}

func TestConnectedComponents(t *testing.T) {
	g := New(7)
	g.AddEdge(0, 1, 1, 0)
	g.AddEdge(1, 2, 0, -0.5) // negative edges still connect components
	g.AddEdge(4, 5, 1, 0)
	comps := g.ConnectedComponents()
	want := [][]int{{0, 1, 2}, {3}, {4, 5}, {6}}
	if len(comps) != len(want) {
		t.Fatalf("comps = %v", comps)
	}
	for i := range want {
		if len(comps[i]) != len(want[i]) {
			t.Fatalf("comps = %v, want %v", comps, want)
		}
		for j := range want[i] {
			if comps[i][j] != want[i][j] {
				t.Fatalf("comps = %v, want %v", comps, want)
			}
		}
	}
}

func TestPositiveComponentsIgnoresWeakAndNegative(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1, 0.5, 0)
	g.AddEdge(1, 2, 0.05, 0) // below threshold
	g.AddEdge(2, 3, 0, -0.9) // negative only
	comps := g.PositiveComponents(0.1)
	if len(comps) != 3 {
		t.Errorf("PositiveComponents = %v, want 3 components", comps)
	}
}

func TestSubgraph(t *testing.T) {
	g := New(5)
	g.AddEdge(0, 2, 0.4, -0.1)
	g.AddEdge(2, 4, 0.6, 0)
	g.AddEdge(1, 3, 0.9, 0)
	sub, orig := g.Subgraph([]int{0, 2, 4})
	if sub.NumVertices() != 3 || sub.NumEdges() != 2 {
		t.Fatalf("subgraph wrong: %d vertices %d edges", sub.NumVertices(), sub.NumEdges())
	}
	if orig[0] != 0 || orig[1] != 2 || orig[2] != 4 {
		t.Errorf("orig mapping = %v", orig)
	}
	e := sub.GetEdge(0, 1)
	if e == nil || e.Pos != 0.4 || e.Neg != -0.1 {
		t.Errorf("subgraph edge = %+v", e)
	}
}

func TestStripNegative(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1, 0.5, -0.4)
	g.StripNegative()
	if g.GetEdge(0, 1).Neg != 0 {
		t.Error("StripNegative left a negative weight")
	}
	if g.GetEdge(0, 1).Pos != 0.5 {
		t.Error("StripNegative must not touch positive weights")
	}
}

// TestHashToMinMatchesBFS is a property test: on random graphs, the
// mapreduce Hash-to-Min component algorithm agrees with BFS components.
func TestHashToMinMatchesBFS(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 25; trial++ {
		n := 2 + rng.Intn(30)
		g := New(n)
		edges := rng.Intn(2 * n)
		for i := 0; i < edges; i++ {
			g.AddEdge(rng.Intn(n), rng.Intn(n), rng.Float64(), 0)
		}
		bfs := g.ConnectedComponents()
		htm := g.HashToMinComponents(mapreduce.Config{Workers: 2})
		if len(bfs) != len(htm) {
			t.Fatalf("trial %d: %d vs %d components", trial, len(bfs), len(htm))
		}
		for i := range bfs {
			if len(bfs[i]) != len(htm[i]) {
				t.Fatalf("trial %d: component %d sizes differ: %v vs %v", trial, i, bfs[i], htm[i])
			}
			for j := range bfs[i] {
				if bfs[i][j] != htm[i][j] {
					t.Fatalf("trial %d: component %d differs: %v vs %v", trial, i, bfs[i], htm[i])
				}
			}
		}
	}
}
