package graph

import (
	"math/rand"
	"reflect"
	"testing"
)

func TestDecomposeEmptyGraph(t *testing.T) {
	if comps := New(0).Decompose(); len(comps) != 0 {
		t.Errorf("Decompose on empty graph = %v, want none", comps)
	}
}

func TestDecomposeSingleComponent(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1, 0.5, 0)
	g.AddEdge(1, 2, 0.4, -0.1)
	g.AddEdge(2, 3, 0, -0.9) // negative-only edges still connect
	comps := g.Decompose()
	if len(comps) != 1 {
		t.Fatalf("components = %d, want 1", len(comps))
	}
	c := comps[0]
	if !reflect.DeepEqual(c.Vertices, []int{0, 1, 2, 3}) {
		t.Errorf("Vertices = %v", c.Vertices)
	}
	if c.Sub.NumVertices() != 4 || c.Sub.NumEdges() != 3 {
		t.Errorf("subgraph: %d vertices %d edges", c.Sub.NumVertices(), c.Sub.NumEdges())
	}
	if e := c.Sub.GetEdge(1, 2); e == nil || e.Pos != 0.4 || e.Neg != -0.1 {
		t.Errorf("edge weights not carried over: %+v", e)
	}
}

func TestDecomposeManySingletons(t *testing.T) {
	g := New(50)
	comps := g.Decompose()
	if len(comps) != 50 {
		t.Fatalf("components = %d, want 50 singletons", len(comps))
	}
	for i, c := range comps {
		if len(c.Vertices) != 1 || c.Vertices[0] != i {
			t.Fatalf("component %d = %v, want singleton {%d}", i, c.Vertices, i)
		}
		if c.Sub.NumVertices() != 1 || c.Sub.NumEdges() != 0 {
			t.Fatalf("singleton subgraph %d has %d vertices %d edges",
				i, c.Sub.NumVertices(), c.Sub.NumEdges())
		}
	}
}

// TestDecomposeMatchesSubgraph is a property test: Decompose must agree
// with the reference path ConnectedComponents + Subgraph on random graphs.
func TestDecomposeMatchesSubgraph(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(40)
		g := New(n)
		for e := rng.Intn(2 * n); e > 0; e-- {
			g.AddEdge(rng.Intn(n), rng.Intn(n), rng.Float64(), -rng.Float64())
		}
		comps := g.Decompose()
		want := g.ConnectedComponents()
		if len(comps) != len(want) {
			t.Fatalf("trial %d: %d components, want %d", trial, len(comps), len(want))
		}
		for i := range want {
			if !reflect.DeepEqual(comps[i].Vertices, want[i]) {
				t.Fatalf("trial %d: component %d vertices %v, want %v",
					trial, i, comps[i].Vertices, want[i])
			}
			refSub, _ := g.Subgraph(want[i])
			if comps[i].Sub.NumEdges() != refSub.NumEdges() {
				t.Fatalf("trial %d: component %d has %d edges, want %d",
					trial, i, comps[i].Sub.NumEdges(), refSub.NumEdges())
			}
			for _, e := range refSub.Edges() {
				got := comps[i].Sub.GetEdge(e.A, e.B)
				if got == nil || got.Pos != e.Pos || got.Neg != e.Neg {
					t.Fatalf("trial %d: component %d edge (%d,%d) = %+v, want %+v",
						trial, i, e.A, e.B, got, e)
				}
			}
		}
	}
}
