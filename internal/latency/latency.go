// Package latency provides the power-of-two-bucket latency histogram
// shared by the serving layer's /stats and by the load generator's
// reports. The two sides of a measurement must bucket identically for
// their numbers to be comparable, so there is exactly one implementation.
package latency

import (
	"sync/atomic"
	"time"
)

// NumBuckets is the number of power-of-two buckets a Histogram holds;
// durations past the last bucket's range clamp into it.
const NumBuckets = 40

// Histogram approximates latency percentiles with power-of-two microsecond
// buckets (bucket i covers [2^i, 2^(i+1)) µs). Observation is a single
// atomic increment, so hot paths never take a lock; percentile reads walk
// 40 counters and report the inclusive upper bound of the containing
// bucket, which is plenty for dashboards and reports.
type Histogram struct {
	buckets [NumBuckets]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64 // total microseconds, for the mean
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	us := d.Microseconds()
	if us < 0 {
		us = 0
	}
	b := 0
	for v := us; v > 1 && b < len(h.buckets)-1; v >>= 1 {
		b++
	}
	h.buckets[b].Add(1)
	h.count.Add(1)
	h.sum.Add(us)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Buckets returns a point-in-time copy of the per-bucket counts, the total
// observation count, and the observation sum in microseconds — the raw
// material the metrics exposition converts into cumulative `le` buckets.
// Each counter is read once; under concurrent observation the copy is
// per-bucket atomic.
func (h *Histogram) Buckets() (buckets [NumBuckets]int64, count, sumMicros int64) {
	for i := range h.buckets {
		buckets[i] = h.buckets[i].Load()
	}
	return buckets, h.count.Load(), h.sum.Load()
}

// BucketUpperBound returns bucket i's inclusive upper bound. Observations
// are whole microseconds, so bucket i — covering [2^i, 2^(i+1)) µs, with
// bucket 0 also holding 0 — contains nothing above (2^(i+1) − 1) µs.
func BucketUpperBound(i int) time.Duration {
	return time.Duration(int64(1)<<(i+1)-1) * time.Microsecond
}

// Percentile returns the latency below which fraction p of observations
// fall, as the inclusive upper bound of the matched bucket: (2^(i+1) − 1) µs
// for bucket i, a value an observation can actually take. (Reporting the
// exclusive bound 2^(i+1) µs — as this method once did — misstates every
// edge: an all-zero histogram claimed a 2µs percentile, and a column of
// exact 128µs observations claimed 256µs.) Zero observations report zero.
func (h *Histogram) Percentile(p float64) time.Duration {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := int64(p*float64(total) + 0.5)
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i := range h.buckets {
		seen += h.buckets[i].Load()
		if seen >= rank {
			return BucketUpperBound(i)
		}
	}
	return BucketUpperBound(NumBuckets - 1)
}

// Mean returns the average observed latency.
func (h *Histogram) Mean() time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sum.Load()/n) * time.Microsecond
}
