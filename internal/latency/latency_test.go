package latency

import (
	"testing"
	"time"
)

func TestHistogram(t *testing.T) {
	var h Histogram
	if h.Percentile(0.99) != 0 || h.Mean() != 0 {
		t.Error("empty histogram must report zero")
	}
	for i := 0; i < 90; i++ {
		h.Observe(100 * time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(10 * time.Millisecond)
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	// 100µs lands in [64µs, 128µs) → inclusive upper bound 127µs.
	if got := h.Percentile(0.50); got != 127*time.Microsecond {
		t.Errorf("p50 = %v, want 127µs", got)
	}
	// The p99 must land in the 10ms bucket: [8192µs, 16384µs) → 16383µs.
	if got := h.Percentile(0.99); got != 16383*time.Microsecond {
		t.Errorf("p99 = %v, want 16.383ms", got)
	}
	wantMean := (90*100 + 10*10000) / 100 // µs
	if got := h.Mean(); got != time.Duration(wantMean)*time.Microsecond {
		t.Errorf("mean = %v, want %dµs", got, wantMean)
	}
	h.Observe(-time.Second) // clamped, must not panic or corrupt
	if h.Count() != 101 {
		t.Errorf("count after clamp = %d", h.Count())
	}
}

// TestHistogramBucketBoundaries pins where edge-case durations land and
// what Percentile reports for them: the bucket's inclusive upper bound,
// (2^(i+1) − 1) µs — a value an observation in the bucket can actually take.
func TestHistogramBucketBoundaries(t *testing.T) {
	cases := []struct {
		name    string
		observe time.Duration
		bucket  int
		want    time.Duration
	}{
		{"zero", 0, 0, 1 * time.Microsecond},
		{"sub-microsecond truncates to zero", 300 * time.Nanosecond, 0, 1 * time.Microsecond},
		{"one microsecond", 1 * time.Microsecond, 0, 1 * time.Microsecond},
		{"first power of two", 2 * time.Microsecond, 1, 3 * time.Microsecond},
		{"just below a power of two", 127 * time.Microsecond, 6, 127 * time.Microsecond},
		{"exact power of two", 128 * time.Microsecond, 7, 255 * time.Microsecond},
		{"just above a power of two", 129 * time.Microsecond, 7, 255 * time.Microsecond},
		{"top bucket lower edge", (1 << 39) * time.Microsecond, 39, (1<<40 - 1) * time.Microsecond},
		{"overflow clamps into the top bucket", (1 << 45) * time.Microsecond, 39, (1<<40 - 1) * time.Microsecond},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var h Histogram
			h.Observe(tc.observe)
			buckets, count, _ := h.Buckets()
			if count != 1 {
				t.Fatalf("count = %d, want 1", count)
			}
			if buckets[tc.bucket] != 1 {
				got := -1
				for i, b := range buckets {
					if b == 1 {
						got = i
					}
				}
				t.Fatalf("observation landed in bucket %d, want %d", got, tc.bucket)
			}
			if got := h.Percentile(1.0); got != tc.want {
				t.Errorf("p100 = %v, want %v", got, tc.want)
			}
			if got := BucketUpperBound(tc.bucket); got != tc.want {
				t.Errorf("BucketUpperBound(%d) = %v, want %v", tc.bucket, got, tc.want)
			}
		})
	}
}

// TestHistogramBuckets checks the accessor against a known distribution.
func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	h.Observe(0)
	h.Observe(1 * time.Microsecond)
	h.Observe(5 * time.Microsecond) // bucket 2: [4, 8)
	buckets, count, sum := h.Buckets()
	if count != 3 {
		t.Fatalf("count = %d", count)
	}
	if sum != 6 {
		t.Fatalf("sum = %dµs, want 6", sum)
	}
	if buckets[0] != 2 || buckets[2] != 1 {
		t.Fatalf("buckets[0]=%d buckets[2]=%d, want 2 and 1", buckets[0], buckets[2])
	}
}
