package latency

import (
	"testing"
	"time"
)

func TestHistogram(t *testing.T) {
	var h Histogram
	if h.Percentile(0.99) != 0 || h.Mean() != 0 {
		t.Error("empty histogram must report zero")
	}
	for i := 0; i < 90; i++ {
		h.Observe(100 * time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(10 * time.Millisecond)
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	// 100µs lands in [64µs, 128µs) → upper bound 128µs.
	if got := h.Percentile(0.50); got != 128*time.Microsecond {
		t.Errorf("p50 = %v, want 128µs", got)
	}
	// The p99 must land in the 10ms bucket: [8192µs, 16384µs) → 16384µs.
	if got := h.Percentile(0.99); got != 16384*time.Microsecond {
		t.Errorf("p99 = %v, want 16.384ms", got)
	}
	wantMean := (90*100 + 10*10000) / 100 // µs
	if got := h.Mean(); got != time.Duration(wantMean)*time.Microsecond {
		t.Errorf("mean = %v, want %dµs", got, wantMean)
	}
	h.Observe(-time.Second) // clamped, must not panic or corrupt
	if h.Count() != 101 {
		t.Errorf("count after clamp = %d", h.Count())
	}
}
