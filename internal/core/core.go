// Package core is the public façade of the mapping-synthesis library. It
// wires the full pipeline of the paper (Figure 1) — candidate extraction,
// table synthesis, conflict resolution — behind a single Synthesize call
// with one Config, and reports per-stage timings used by the runtime and
// scalability experiments (Figures 8 and 9).
package core

import (
	"sort"
	"time"

	"mapsynth/internal/compat"
	"mapsynth/internal/conflict"
	"mapsynth/internal/extract"
	"mapsynth/internal/mapping"
	"mapsynth/internal/stats"
	"mapsynth/internal/strmatch"
	"mapsynth/internal/synthesis"
	"mapsynth/internal/table"
)

// Config parameterizes the whole pipeline. The zero value is not meaningful;
// start from DefaultConfig.
type Config struct {
	// Extract configures column coherence and FD filtering (Section 3).
	Extract extract.Options
	// Compat configures compatibility weights and blocking (Section 4.1).
	Compat compat.Options
	// Tau is the negative-edge hard-constraint threshold τ (Section 4.2).
	Tau float64
	// Conflict configures post-synthesis conflict resolution (Section 4.2,
	// "Conflict Resolution").
	Conflict conflict.Options
	// DisableNegativeSignal ignores all negative incompatibility — the
	// SynthesisPos ablation of Section 5.2.
	DisableNegativeSignal bool
	// Resolution selects the post-processing strategy: the paper's greedy
	// table removal (default), the majority-voting baseline of Section 5.6,
	// or none (the "W/O Resolution" ablation of Figure 15).
	Resolution ResolutionStrategy
	// MinDomains keeps only mappings synthesized from at least this many
	// distinct domains (Section 4.3 uses 8 on the web corpus). Zero keeps
	// everything.
	MinDomains int
	// MinPairs keeps only mappings with at least this many value pairs.
	MinPairs int
	// Synonyms optionally plugs an external synonym feed into matching and
	// conflict detection.
	Synonyms *strmatch.SynonymFeed
	// Workers bounds parallelism; zero selects GOMAXPROCS.
	Workers int
}

// ResolutionStrategy selects how intra-partition conflicts are resolved.
type ResolutionStrategy int

const (
	// ResolveGreedy removes the fewest conflicting tables (Algorithm 4).
	ResolveGreedy ResolutionStrategy = iota
	// ResolveMajority keeps, per left value, the right value supported by
	// the most tables (the paper's comparison baseline, Section 5.6).
	ResolveMajority
	// ResolveNone skips conflict resolution entirely.
	ResolveNone
)

// DefaultConfig returns the configuration used by the experiments, matching
// the paper's parameter choices where stated (θ = 0.95, τ = −0.2) and
// laptop-scale analogues elsewhere.
func DefaultConfig() Config {
	return Config{
		Extract:  extract.DefaultOptions(),
		Compat:   compat.DefaultOptions(),
		Tau:      synthesis.DefaultTau,
		Conflict: conflict.DefaultOptions(),
		MinPairs: 4,
	}
}

// Timings records wall-clock per pipeline stage.
type Timings struct {
	Index     time.Duration // co-occurrence index build
	Extract   time.Duration // candidate extraction
	Graph     time.Duration // blocking + compatibility weights
	Partition time.Duration // greedy synthesis
	Resolve   time.Duration // conflict resolution + assembly
	Total     time.Duration
}

// Result is the output of Synthesize.
type Result struct {
	// Mappings holds the synthesized relationships, sorted by descending
	// popularity (#domains, then #tables, then size).
	Mappings []*mapping.Mapping
	// ExtractStats reports extraction filtering counts.
	ExtractStats extract.Stats
	// Candidates is the number of candidate binary tables after extraction.
	Candidates int
	// Edges is the number of non-zero compatibility edges.
	Edges int
	// Partitions is the number of partitions before curation filtering.
	Partitions int
	// TablesRemoved counts candidate tables dropped by conflict resolution.
	TablesRemoved int
	// Timings holds per-stage wall-clock.
	Timings Timings
}

// Synthesizer runs the pipeline. It is stateless between calls; the struct
// exists to hold configuration.
type Synthesizer struct {
	cfg Config
}

// New returns a Synthesizer with the given configuration.
func New(cfg Config) *Synthesizer { return &Synthesizer{cfg: cfg} }

// Synthesize runs the full pipeline over a table corpus and returns the
// synthesized mapping relationships.
func (s *Synthesizer) Synthesize(tables []*table.Table) *Result {
	cfg := s.cfg
	res := &Result{}
	start := time.Now()

	t0 := time.Now()
	idx := stats.BuildIndex(tables)
	res.Timings.Index = time.Since(t0)

	t0 = time.Now()
	ext := extract.New(idx, cfg.Extract)
	bins, est := ext.ExtractAll(tables)
	res.ExtractStats = est
	res.Candidates = len(bins)
	res.Timings.Extract = time.Since(t0)

	t0 = time.Now()
	copt := cfg.Compat
	copt.Synonyms = cfg.Synonyms
	cands := compat.Precompute(bins)
	g := compat.BuildGraph(cands, copt, cfg.Workers)
	if cfg.DisableNegativeSignal {
		g.StripNegative()
	}
	res.Edges = g.NumEdges()
	res.Timings.Graph = time.Since(t0)

	t0 = time.Now()
	parts := synthesis.GreedyPerComponent(g, cfg.Tau)
	res.Partitions = len(parts)
	res.Timings.Partition = time.Since(t0)

	t0 = time.Now()
	conflictOpt := cfg.Conflict
	conflictOpt.Synonyms = cfg.Synonyms
	var mappings []*mapping.Mapping
	nextID := 0
	for _, part := range parts {
		group := make([]*table.BinaryTable, len(part))
		for i, v := range part {
			group[i] = bins[v]
		}
		var m *mapping.Mapping
		switch cfg.Resolution {
		case ResolveGreedy:
			kept, removed := conflict.Resolve(group, conflictOpt)
			res.TablesRemoved += len(removed)
			group = kept
			if len(group) == 0 {
				continue
			}
			m = mapping.Build(nextID, group)
		case ResolveMajority:
			voted := conflict.MajorityVotePairs(group)
			m = mapping.BuildFromPairs(nextID, voted, group)
		default: // ResolveNone
			m = mapping.Build(nextID, group)
		}
		nextID++
		if m.Size() < cfg.MinPairs {
			continue
		}
		if cfg.MinDomains > 0 && m.NumDomains() < cfg.MinDomains {
			continue
		}
		mappings = append(mappings, m)
	}
	sortByPopularity(mappings)
	res.Mappings = mappings
	res.Timings.Resolve = time.Since(t0)
	res.Timings.Total = time.Since(start)
	return res
}

// sortByPopularity orders mappings by descending #domains, then #tables,
// then size, then ascending ID for determinism — the paper's curation
// ordering (Section 4.3).
func sortByPopularity(ms []*mapping.Mapping) {
	sort.Slice(ms, func(i, j int) bool {
		if ms[i].NumDomains() != ms[j].NumDomains() {
			return ms[i].NumDomains() > ms[j].NumDomains()
		}
		if ms[i].NumTables() != ms[j].NumTables() {
			return ms[i].NumTables() > ms[j].NumTables()
		}
		if ms[i].Size() != ms[j].Size() {
			return ms[i].Size() > ms[j].Size()
		}
		return ms[i].ID < ms[j].ID
	})
}
