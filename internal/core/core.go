// Package core is the public façade of the mapping-synthesis library. It
// wires the full pipeline of the paper (Figure 1) — candidate extraction,
// table synthesis, conflict resolution — behind a single Synthesize call
// with one Config, and reports per-stage timings used by the runtime and
// scalability experiments (Figures 8 and 9).
//
// Since the staged-engine refactor, core owns no pipeline logic of its own:
// Config, Result and Timings are aliases of the internal/pipeline types, and
// Synthesize delegates to pipeline.Engine.Run with a background context.
// Callers that need cancellation or per-stage progress hooks use
// SynthesizeContext or drive internal/pipeline directly.
package core

import (
	"context"

	"mapsynth/internal/pipeline"
	"mapsynth/internal/table"
)

// Config parameterizes the whole pipeline; see pipeline.Config. The zero
// value is not meaningful; start from DefaultConfig.
type Config = pipeline.Config

// ResolutionStrategy selects how intra-partition conflicts are resolved.
type ResolutionStrategy = pipeline.ResolutionStrategy

const (
	// ResolveGreedy removes the fewest conflicting tables (Algorithm 4).
	ResolveGreedy = pipeline.ResolveGreedy
	// ResolveMajority keeps, per left value, the right value supported by
	// the most tables (the paper's comparison baseline, Section 5.6).
	ResolveMajority = pipeline.ResolveMajority
	// ResolveNone skips conflict resolution entirely.
	ResolveNone = pipeline.ResolveNone
)

// DefaultConfig returns the configuration used by the experiments, matching
// the paper's parameter choices where stated (θ = 0.95, τ = −0.2) and
// laptop-scale analogues elsewhere.
func DefaultConfig() Config { return pipeline.DefaultConfig() }

// Timings records wall-clock per pipeline stage.
type Timings = pipeline.Timings

// Result is the output of Synthesize.
type Result = pipeline.Result

// Synthesizer runs the pipeline. It is stateless between calls; the struct
// exists to hold configuration.
type Synthesizer struct {
	cfg Config
}

// New returns a Synthesizer with the given configuration.
func New(cfg Config) *Synthesizer { return &Synthesizer{cfg: cfg} }

// Synthesize runs the full pipeline over a table corpus and returns the
// synthesized mapping relationships.
func (s *Synthesizer) Synthesize(tables []*table.Table) *Result {
	res, _ := s.SynthesizeContext(context.Background(), tables)
	return res
}

// SynthesizeContext is Synthesize with cancellation: when ctx is cancelled
// mid-run the engine stops promptly and returns ctx's error with a nil
// result. Output is identical to Synthesize otherwise.
func (s *Synthesizer) SynthesizeContext(ctx context.Context, tables []*table.Table) (*Result, error) {
	return pipeline.New(s.cfg).Run(ctx, tables)
}
