package core

import (
	"strings"
	"testing"

	"mapsynth/internal/table"
)

// TestPipelineSurvivesDegenerateCorpora injects the malformed inputs real
// extraction produces — empty tables, ragged columns, huge cells, all-empty
// values, single-column tables, duplicated tables — and requires the
// pipeline to terminate cleanly without panicking.
func TestPipelineSurvivesDegenerateCorpora(t *testing.T) {
	long := strings.Repeat("x", 100000)
	corpora := map[string][]*table.Table{
		"empty corpus": {},
		"empty table":  {{ID: 0, Domain: "d"}},
		"one column": {{ID: 0, Domain: "d", Columns: []table.Column{
			{Name: "a", Values: []string{"x", "y"}},
		}}},
		"ragged columns": {{ID: 0, Domain: "d", Columns: []table.Column{
			{Name: "a", Values: []string{"x", "y", "z", "w", "v"}},
			{Name: "b", Values: []string{"1"}},
		}}},
		"empty values": {{ID: 0, Domain: "d", Columns: []table.Column{
			{Name: "a", Values: []string{"", "  ", "--", "", ""}},
			{Name: "b", Values: []string{"", "", "", "", ""}},
		}}},
		"huge cell": {{ID: 0, Domain: "d", Columns: []table.Column{
			{Name: "a", Values: []string{long, "y", "z", "w"}},
			{Name: "b", Values: []string{"1", "2", "3", "4"}},
		}}},
		"duplicate tables": {
			{ID: 0, Domain: "d", Columns: []table.Column{
				{Name: "a", Values: []string{"x", "y", "z", "w"}},
				{Name: "b", Values: []string{"1", "2", "3", "4"}},
			}},
			{ID: 1, Domain: "d", Columns: []table.Column{
				{Name: "a", Values: []string{"x", "y", "z", "w"}},
				{Name: "b", Values: []string{"1", "2", "3", "4"}},
			}},
		},
		"unicode soup": {{ID: 0, Domain: "d", Columns: []table.Column{
			{Name: "a", Values: []string{"日本", "대한민국", "Ελλάδα", "مصر"}},
			{Name: "b", Values: []string{"JP", "KR", "GR", "EG"}},
		}}},
	}
	for name, corpus := range corpora {
		name, corpus := name, corpus
		t.Run(name, func(t *testing.T) {
			cfg := DefaultConfig()
			cfg.Extract.CoherenceThreshold = -1
			res := New(cfg).Synthesize(corpus)
			if res == nil {
				t.Fatal("nil result")
			}
			// Invariant: every mapping has at least MinPairs pairs.
			for _, m := range res.Mappings {
				if m.Size() < cfg.MinPairs {
					t.Errorf("mapping %d smaller than MinPairs: %d", m.ID, m.Size())
				}
			}
		})
	}
}

// TestPipelineDeterministic requires byte-identical mapping output across
// runs over the same corpus — the property the experiments rely on.
func TestPipelineDeterministic(t *testing.T) {
	corpus := miniCorpus()
	cfg := DefaultConfig()
	cfg.Extract.CoherenceThreshold = -1
	a := New(cfg).Synthesize(corpus)
	b := New(cfg).Synthesize(corpus)
	if len(a.Mappings) != len(b.Mappings) {
		t.Fatalf("mapping counts differ: %d vs %d", len(a.Mappings), len(b.Mappings))
	}
	for i := range a.Mappings {
		ma, mb := a.Mappings[i], b.Mappings[i]
		if ma.Size() != mb.Size() {
			t.Fatalf("mapping %d sizes differ", i)
		}
		for j := range ma.Pairs {
			if ma.Pairs[j] != mb.Pairs[j] {
				t.Fatalf("mapping %d pair %d differs: %v vs %v", i, j, ma.Pairs[j], mb.Pairs[j])
			}
		}
	}
}

// TestMappingsSatisfyFunctionalInvariant: after greedy conflict resolution,
// every synthesized mapping must be conflict-free — no left value with two
// non-matching right values (the definition of a mapping relationship).
func TestMappingsSatisfyFunctionalInvariant(t *testing.T) {
	corpus := miniCorpus()
	cfg := DefaultConfig()
	cfg.Extract.CoherenceThreshold = -1
	res := New(cfg).Synthesize(corpus)
	for _, m := range res.Mappings {
		byLeft := map[string]map[string]bool{}
		for _, p := range m.Pairs {
			l := strings.ToLower(strings.TrimSpace(p.L))
			if byLeft[l] == nil {
				byLeft[l] = map[string]bool{}
			}
			byLeft[l][strings.ToLower(p.R)] = true
		}
		for l, rs := range byLeft {
			if len(rs) > 2 { // approximate matching tolerates close variants
				t.Errorf("mapping %d: left %q has %d distinct rights: %v", m.ID, l, len(rs), rs)
			}
		}
	}
}
