package core

import (
	"testing"

	"mapsynth/internal/table"
)

// miniCorpus builds a tiny corpus with two confusable code systems: tables
// of relation A (x->1 style) and relation B sharing lefts but with
// different rights on half the entities, plus one dirty table.
func miniCorpus() []*table.Table {
	mkTable := func(id int, domain string, lefts, rights []string) *table.Table {
		return &table.Table{
			ID: id, Domain: domain,
			Columns: []table.Column{
				{Name: "name", Values: lefts},
				{Name: "code", Values: rights},
			},
		}
	}
	lefts := []string{"alpha", "beta", "gamma", "delta", "epsilon", "zeta"}
	codesA := []string{"A1", "B2", "C3", "D4", "E5", "F6"}
	codesB := []string{"A1", "B2", "X3", "Y4", "Z5", "W6"} // half conflict
	var tables []*table.Table
	id := 0
	for i := 0; i < 6; i++ {
		tables = append(tables, mkTable(id, domainOf(i), lefts, codesA))
		id++
	}
	for i := 0; i < 6; i++ {
		tables = append(tables, mkTable(id, domainOf(i+3), lefts, codesB))
		id++
	}
	// One dirty A-table with two swapped codes.
	dirty := []string{"A1", "B2", "D4", "C3", "E5", "F6"}
	tables = append(tables, mkTable(id, "dirty.com", lefts, dirty))
	return tables
}

func domainOf(i int) string {
	return string(rune('a'+i%8)) + ".com"
}

func TestSynthesizeSeparatesConfusableSystems(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Extract.CoherenceThreshold = -1 // tiny corpus: skip PMI filtering
	res := New(cfg).Synthesize(miniCorpus())
	if len(res.Mappings) < 2 {
		t.Fatalf("mappings = %d, want at least the two systems", len(res.Mappings))
	}
	// No synthesized mapping may mix C3 and X3 for gamma.
	for _, m := range res.Mappings {
		got, ok := m.Lookup("gamma")
		if !ok {
			continue
		}
		seen := map[string]bool{}
		for _, p := range m.Pairs {
			if p.L == "gamma" {
				seen[p.R] = true
			}
		}
		if seen["C3"] && seen["X3"] {
			t.Errorf("mapping %v mixes both code systems for gamma (lookup=%q)", m, got)
		}
	}
}

func TestSynthesizePosMergesThem(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Extract.CoherenceThreshold = -1
	cfg.DisableNegativeSignal = true
	cfg.Resolution = ResolveNone
	res := New(cfg).Synthesize(miniCorpus())
	merged := false
	for _, m := range res.Mappings {
		seen := map[string]bool{}
		for _, p := range m.Pairs {
			if p.L == "gamma" {
				seen[p.R] = true
			}
		}
		if seen["C3"] && seen["X3"] {
			merged = true
		}
	}
	if !merged {
		t.Error("without negative signal the confusable systems should merge")
	}
}

func TestConflictResolutionRemovesDirtyTable(t *testing.T) {
	// A dirty table with a small conflict ratio (2 of 10 lefts, w- = -0.2,
	// not strictly below τ = -0.2) merges into the clean cluster; conflict
	// resolution must then remove it (the Figure-4 scenario). A dirtier
	// table would be kept out by the hard constraint instead.
	lefts := []string{"alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta", "theta", "iota", "kappa"}
	clean := []string{"A1", "B2", "C3", "D4", "E5", "F6", "G7", "H8", "I9", "J10"}
	dirty := append([]string{}, clean...)
	dirty[2], dirty[3] = dirty[3], dirty[2] // swap gamma/delta codes
	var tables []*table.Table
	for i := 0; i < 6; i++ {
		tables = append(tables, &table.Table{
			ID: i, Domain: domainOf(i),
			Columns: []table.Column{
				{Name: "name", Values: lefts},
				{Name: "code", Values: clean},
			},
		})
	}
	tables = append(tables, &table.Table{
		ID: 6, Domain: "dirty.com",
		Columns: []table.Column{
			{Name: "name", Values: lefts},
			{Name: "code", Values: dirty},
		},
	})
	cfg := DefaultConfig()
	cfg.Extract.CoherenceThreshold = -1
	res := New(cfg).Synthesize(tables)
	if res.TablesRemoved == 0 {
		t.Error("conflict resolution should remove the dirty table's candidates")
	}
	for _, m := range res.Mappings {
		if got, ok := m.Lookup("gamma"); ok && got != "C3" {
			t.Errorf("gamma resolved to %q, want clean C3", got)
		}
	}
}

func TestResolutionStrategies(t *testing.T) {
	for _, strat := range []ResolutionStrategy{ResolveGreedy, ResolveMajority, ResolveNone} {
		cfg := DefaultConfig()
		cfg.Extract.CoherenceThreshold = -1
		cfg.Resolution = strat
		res := New(cfg).Synthesize(miniCorpus())
		if len(res.Mappings) == 0 {
			t.Errorf("strategy %v produced no mappings", strat)
		}
	}
}

func TestMinDomainsFilter(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Extract.CoherenceThreshold = -1
	cfg.MinDomains = 50 // impossible
	res := New(cfg).Synthesize(miniCorpus())
	if len(res.Mappings) != 0 {
		t.Errorf("MinDomains filter ignored: %d mappings", len(res.Mappings))
	}
}

func TestTimingsPopulated(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Extract.CoherenceThreshold = -1
	res := New(cfg).Synthesize(miniCorpus())
	if res.Timings.Total <= 0 {
		t.Error("total timing missing")
	}
	sum := res.Timings.Index + res.Timings.Extract + res.Timings.Graph +
		res.Timings.Partition + res.Timings.Resolve
	if sum > res.Timings.Total*2 {
		t.Errorf("stage timings inconsistent: sum=%v total=%v", sum, res.Timings.Total)
	}
}

func TestMappingsSortedByPopularity(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Extract.CoherenceThreshold = -1
	res := New(cfg).Synthesize(miniCorpus())
	for i := 1; i < len(res.Mappings); i++ {
		if res.Mappings[i].NumDomains() > res.Mappings[i-1].NumDomains() {
			t.Errorf("mappings not sorted by popularity at %d", i)
		}
	}
}
