package synthesis

import (
	"sort"

	"mapsynth/internal/graph"
)

// MinCutSingleNegative solves Problem 11 exactly when the graph has exactly
// one negative edge below tau (the easy case of the paper's trichotomy): the
// two endpoints of the negative edge become source and sink of a max-flow /
// min-cut instance over the positive weights, and the optimal partitioning
// is the two sides of the minimum cut. Vertices with no positive path to
// either side go with the source side of the residual reachability.
//
// It returns (partitioning, true) on success, or (nil, false) when the graph
// does not have exactly one negative edge below tau.
func MinCutSingleNegative(g *graph.Graph, tau float64) (Partitioning, bool) {
	var negEdge *graph.Edge
	for _, e := range g.Edges() {
		if e.Neg < tau {
			if negEdge != nil {
				return nil, false
			}
			negEdge = e
		}
	}
	if negEdge == nil {
		return nil, false
	}
	n := g.NumVertices()
	// Build a capacity matrix over positive weights. Scaling to integers is
	// unnecessary: Edmonds–Karp with float64 capacities terminates because
	// each augmentation saturates at least one edge and the path count is
	// bounded by O(VE) iterations.
	cap := make([][]float64, n)
	for i := range cap {
		cap[i] = make([]float64, n)
	}
	for _, e := range g.Edges() {
		if e.Pos > 0 {
			cap[e.A][e.B] += e.Pos
			cap[e.B][e.A] += e.Pos
		}
	}
	s, t := negEdge.A, negEdge.B
	// Edmonds–Karp.
	const eps = 1e-12
	for {
		parent := bfsAugmenting(cap, s, t, eps)
		if parent == nil {
			break
		}
		// Find bottleneck.
		bott := 1e308
		for v := t; v != s; v = parent[v] {
			u := parent[v]
			if cap[u][v] < bott {
				bott = cap[u][v]
			}
		}
		for v := t; v != s; v = parent[v] {
			u := parent[v]
			cap[u][v] -= bott
			cap[v][u] += bott
		}
	}
	// Source side = residual-reachable from s.
	side := make([]bool, n)
	stack := []int{s}
	side[s] = true
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for v := 0; v < n; v++ {
			if !side[v] && cap[u][v] > eps {
				side[v] = true
				stack = append(stack, v)
			}
		}
	}
	var a, b []int
	for v := 0; v < n; v++ {
		if side[v] {
			a = append(a, v)
		} else {
			b = append(b, v)
		}
	}
	sort.Ints(a)
	sort.Ints(b)
	parts := Partitioning{a, b}
	sort.Slice(parts, func(i, j int) bool { return parts[i][0] < parts[j][0] })
	return parts, true
}

// bfsAugmenting finds a shortest augmenting path from s to t in the residual
// network, returning the parent array, or nil if t is unreachable.
func bfsAugmenting(cap [][]float64, s, t int, eps float64) []int {
	n := len(cap)
	parent := make([]int, n)
	for i := range parent {
		parent[i] = -1
	}
	parent[s] = s
	queue := []int{s}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for v := 0; v < n; v++ {
			if parent[v] == -1 && cap[u][v] > eps {
				parent[v] = u
				if v == t {
					return parent
				}
				queue = append(queue, v)
			}
		}
	}
	return nil
}
