package synthesis

import (
	"math"
	"math/rand"
	"testing"

	"mapsynth/internal/graph"
)

// figure3Graph builds the paper's Figure 3(a): vertices 0..4 are B1..B5;
// solid ISO tables (B1, B2) on the left, hollow IOC tables (B3, B4, B5) on
// the right.
func figure3Graph() *graph.Graph {
	g := graph.New(5)
	g.AddEdge(0, 1, 0.5, 0)   // B1-B2
	g.AddEdge(1, 2, 0.67, 0)  // B2-B3
	g.AddEdge(2, 4, 0.8, 0)   // B3-B5
	g.AddEdge(2, 3, 0.6, 0)   // B3-B4
	g.AddEdge(3, 4, 0.7, 0)   // B4-B5
	g.AddEdge(1, 3, 0, -0.33) // B2-B4 negative
	g.AddEdge(0, 2, 0, -0.7)  // B1-B3 negative
	return g
}

func TestGreedyFigure3(t *testing.T) {
	g := figure3Graph()
	parts := Greedy(g, DefaultTau)
	// Example 12/16: optimal partitioning is {B1,B2}, {B3,B4,B5}.
	if len(parts) != 2 {
		t.Fatalf("parts = %v, want 2 partitions", parts)
	}
	if len(parts[0]) != 2 || parts[0][0] != 0 || parts[0][1] != 1 {
		t.Errorf("first partition = %v, want [0 1]", parts[0])
	}
	if len(parts[1]) != 3 || parts[1][0] != 2 {
		t.Errorf("second partition = %v, want [2 3 4]", parts[1])
	}
	// Objective: 0.5 + 0.67(B2-B3 lost) ... intra weights: 0.5 + (0.8+0.6+0.7) = 2.6.
	// With the B2-B3 edge cut, the paper reports total score 2.77 counting
	// w+(B2, {B3,B5}) differently; our objective counts intra-partition
	// edge weights only.
	obj := Objective(g, parts)
	if math.Abs(obj-2.6) > 1e-9 {
		t.Errorf("objective = %v, want 2.6", obj)
	}
	if !Feasible(g, parts, DefaultTau) {
		t.Error("greedy result must be feasible")
	}
}

func TestGreedyRespectsHardConstraint(t *testing.T) {
	// Two vertices with huge positive weight but a strong negative edge
	// must not merge.
	g := graph.New(2)
	g.AddEdge(0, 1, 0.99, -0.9)
	parts := Greedy(g, -0.2)
	if len(parts) != 2 {
		t.Errorf("parts = %v: constrained pair must stay apart", parts)
	}
	// With a laxer tau the merge is allowed.
	parts = Greedy(g, -0.95)
	if len(parts) != 1 {
		t.Errorf("parts = %v: lax tau should merge", parts)
	}
}

func TestGreedyAggregatedNegativeBlocksTransitiveMerge(t *testing.T) {
	// A-B positive; B-C positive; A-C strongly negative. After merging the
	// strongest pair, the aggregate must inherit the negative edge (min
	// rule) and refuse the second merge.
	g := graph.New(3)
	g.AddEdge(0, 1, 0.9, 0)
	g.AddEdge(1, 2, 0.8, 0)
	g.AddEdge(0, 2, 0, -0.9)
	parts := Greedy(g, -0.2)
	if len(parts) != 2 {
		t.Fatalf("parts = %v, want 2 partitions", parts)
	}
	if !Feasible(g, parts, -0.2) {
		t.Error("result infeasible")
	}
}

func TestGreedyPerComponentMatchesGreedy(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		n := 3 + rng.Intn(20)
		g := graph.New(n)
		for e := 0; e < n*2; e++ {
			a, b := rng.Intn(n), rng.Intn(n)
			if a == b {
				continue
			}
			pos := rng.Float64()
			var neg float64
			if rng.Intn(4) == 0 {
				neg = -rng.Float64()
			}
			g.AddEdge(a, b, pos, neg)
		}
		whole := Greedy(g, DefaultTau)
		perComp := GreedyPerComponent(g, DefaultTau)
		if Objective(g, whole) != Objective(g, perComp) {
			t.Fatalf("trial %d: objectives differ: %v vs %v",
				trial, Objective(g, whole), Objective(g, perComp))
		}
		if !Feasible(g, perComp, DefaultTau) {
			t.Fatalf("trial %d: per-component result infeasible", trial)
		}
	}
}

// TestGreedyNearExact verifies the greedy heuristic is feasible and close to
// the exact optimum on random small graphs, and never beats it.
func TestGreedyNearExact(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	totalGap := 0.0
	trials := 40
	for trial := 0; trial < trials; trial++ {
		n := 3 + rng.Intn(6) // <= 8 vertices for exact search
		g := graph.New(n)
		for a := 0; a < n; a++ {
			for b := a + 1; b < n; b++ {
				if rng.Float64() < 0.5 {
					continue
				}
				pos := rng.Float64()
				var neg float64
				if rng.Intn(3) == 0 {
					neg = -rng.Float64()
				}
				g.AddEdge(a, b, pos, neg)
			}
		}
		greedy := Greedy(g, DefaultTau)
		exact := Exact(g, DefaultTau)
		og, oe := Objective(g, greedy), Objective(g, exact)
		if og > oe+1e-9 {
			t.Fatalf("trial %d: greedy %v beats exact %v (exact is broken)", trial, og, oe)
		}
		if !Feasible(g, greedy, DefaultTau) || !Feasible(g, exact, DefaultTau) {
			t.Fatalf("trial %d: infeasible result", trial)
		}
		if oe > 0 {
			totalGap += (oe - og) / oe
		}
	}
	if avg := totalGap / float64(trials); avg > 0.15 {
		t.Errorf("greedy average optimality gap %.2f%% too large", avg*100)
	}
}

func TestExactPanicsOnLargeGraph(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Exact should panic beyond MaxExactVertices")
		}
	}()
	Exact(graph.New(MaxExactVertices+1), DefaultTau)
}

func TestMinCutSingleNegative(t *testing.T) {
	// Path graph 0-1-2-3 with weights 0.9, 0.1, 0.9 and a negative edge
	// between 0 and 3: the min cut severs the middle edge.
	g := graph.New(4)
	g.AddEdge(0, 1, 0.9, 0)
	g.AddEdge(1, 2, 0.1, 0)
	g.AddEdge(2, 3, 0.9, 0)
	g.AddEdge(0, 3, 0, -1)
	parts, ok := MinCutSingleNegative(g, DefaultTau)
	if !ok {
		t.Fatal("expected single-negative solve")
	}
	if len(parts) != 2 || len(parts[0]) != 2 {
		t.Fatalf("parts = %v", parts)
	}
	if parts[0][0] != 0 || parts[0][1] != 1 || parts[1][0] != 2 || parts[1][1] != 3 {
		t.Errorf("parts = %v, want [[0 1] [2 3]]", parts)
	}
	// The objective equals the exact optimum.
	exact := Exact(g, DefaultTau)
	if math.Abs(Objective(g, parts)-Objective(g, exact)) > 1e-9 {
		t.Errorf("min-cut objective %v != exact %v", Objective(g, parts), Objective(g, exact))
	}
}

func TestMinCutRejectsWrongNegativeCount(t *testing.T) {
	g := graph.New(3)
	g.AddEdge(0, 1, 1, 0)
	if _, ok := MinCutSingleNegative(g, DefaultTau); ok {
		t.Error("no negative edge: must reject")
	}
	g.AddEdge(0, 2, 0, -1)
	g.AddEdge(1, 2, 0, -1)
	if _, ok := MinCutSingleNegative(g, DefaultTau); ok {
		t.Error("two negative edges: must reject")
	}
}

// TestMinCutMatchesExact cross-checks the max-flow solver against exact
// search on random single-negative-edge graphs (the trichotomy's easy case).
func TestMinCutMatchesExact(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 30; trial++ {
		n := 3 + rng.Intn(5)
		g := graph.New(n)
		for a := 0; a < n; a++ {
			for b := a + 1; b < n; b++ {
				if rng.Float64() < 0.6 {
					g.AddEdge(a, b, rng.Float64(), 0)
				}
			}
		}
		// One negative edge on a random pair (overwrites pos if present).
		a, b := 0, 1+rng.Intn(n-1)
		g.AddEdge(a, b, 0, -1)
		parts, ok := MinCutSingleNegative(g, DefaultTau)
		if !ok {
			t.Fatalf("trial %d: solver rejected valid instance", trial)
		}
		exact := Exact(g, DefaultTau)
		if math.Abs(Objective(g, parts)-Objective(g, exact)) > 1e-9 {
			t.Fatalf("trial %d: min-cut %v != exact %v", trial, Objective(g, parts), Objective(g, exact))
		}
	}
}
