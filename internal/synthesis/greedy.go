// Package synthesis partitions the compatibility graph into synthesized
// relationships (Problem 11 of the paper): maximize the sum of positive
// intra-partition compatibility subject to the hard constraint that no
// partition contains a negative edge below τ.
//
// The problem is NP-hard in general (reduction from multi-cut, Theorem 13)
// with a trichotomy in the number of negative edges: 1 negative edge reduces
// to min-cut/max-flow, 2 stay polynomial, >= 3 are NP-hard. This package
// provides:
//
//   - Greedy: the paper's production algorithm (Algorithm 3) — iterative
//     agglomerative merging of the most compatible partition pair, with a
//     lazy max-heap and union-find-style bookkeeping.
//   - Exact: exponential search for small graphs, used by tests and the
//     ablation bench to measure the greedy gap.
//   - MinCutSingleNegative: the max-flow special case for one negative edge.
package synthesis

import (
	"container/heap"
	"context"
	"math"
	"sort"

	"mapsynth/internal/graph"
)

// DefaultTau is the negative-edge hard-constraint threshold τ used in the
// paper's experiments (−0.2; §5.4 reports peak quality near −0.05 and good
// quality at −0.2).
const DefaultTau = -0.2

// Partitioning is the result of synthesis: disjoint vertex groups covering
// the graph. Groups are sorted by their smallest member; members ascending.
type Partitioning [][]int

// Objective computes the Problem-11 objective of a partitioning on g: the
// sum of positive edge weights whose endpoints share a partition.
func Objective(g *graph.Graph, parts Partitioning) float64 {
	group := make(map[int]int)
	for gi, p := range parts {
		for _, v := range p {
			group[v] = gi
		}
	}
	var sum float64
	for _, e := range g.Edges() {
		if group[e.A] == group[e.B] {
			sum += e.Pos
		}
	}
	return sum
}

// Feasible reports whether no partition contains an edge with negative
// weight below tau (Constraint 6).
func Feasible(g *graph.Graph, parts Partitioning, tau float64) bool {
	group := make(map[int]int)
	for gi, p := range parts {
		for _, v := range p {
			group[v] = gi
		}
	}
	for _, e := range g.Edges() {
		if e.Neg < tau && group[e.A] == group[e.B] {
			return false
		}
	}
	return true
}

// mergeEntry is one candidate merge in the lazy priority queue.
type mergeEntry struct {
	pos  float64
	a, b int // partition roots at push time, a < b
}

type mergeHeap []mergeEntry

func (h mergeHeap) Len() int { return len(h) }
func (h mergeHeap) Less(i, j int) bool {
	if h[i].pos != h[j].pos {
		return h[i].pos > h[j].pos // max-heap on weight
	}
	if h[i].a != h[j].a {
		return h[i].a < h[j].a // deterministic tie-break
	}
	return h[i].b < h[j].b
}
func (h mergeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *mergeHeap) Push(x interface{}) { *h = append(*h, x.(mergeEntry)) }
func (h *mergeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Greedy runs Algorithm 3: start with singleton partitions; repeatedly merge
// the pair of partitions with the greatest aggregated positive weight whose
// aggregated negative weight is not below tau; stop when no eligible pair
// with positive weight remains.
//
// Aggregation on merge follows Appendix E: positive weights add
// (w+(Pi,P') = w+(Pi,P1) + w+(Pi,P2)), negative weights take the minimum
// (most negative dominates). Stale heap entries are discarded lazily by
// checking them against the current aggregated weight.
func Greedy(g *graph.Graph, tau float64) Partitioning {
	parts, _ := GreedyCtx(context.Background(), g, tau)
	return parts
}

// greedyCancelStride bounds how many merges run between cancellation checks
// in GreedyCtx — frequent enough for prompt Ctrl-C, rare enough to stay off
// the merge loop's profile.
const greedyCancelStride = 1024

// GreedyCtx is Greedy with cooperative cancellation: the merge loop checks
// ctx every greedyCancelStride merges and returns ctx's error with a nil
// partitioning when cancelled. Output is unaffected by the checks.
func GreedyCtx(ctx context.Context, g *graph.Graph, tau float64) (Partitioning, error) {
	n := g.NumVertices()
	// parent implements union-find with path halving; the merge loop
	// chooses which root survives (the one with the larger adjacency), so
	// plain parent pointers beat union-by-rank here.
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	find := func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}

	// pos[r][s] / neg[r][s]: aggregated weights between partition roots.
	// Invariant: for active roots r, keys of pos[r]/neg[r] are active roots
	// and the maps are symmetric.
	pos := make([]map[int]float64, n)
	neg := make([]map[int]float64, n)
	for i := 0; i < n; i++ {
		pos[i] = make(map[int]float64)
		neg[i] = make(map[int]float64)
	}
	h := &mergeHeap{}
	for _, e := range g.Edges() {
		if e.Pos != 0 {
			pos[e.A][e.B] = e.Pos
			pos[e.B][e.A] = e.Pos
		}
		if e.Neg != 0 {
			neg[e.A][e.B] = e.Neg
			neg[e.B][e.A] = e.Neg
		}
		if e.Pos > 0 && e.Neg >= tau {
			heap.Push(h, mergeEntry{pos: e.Pos, a: e.A, b: e.B})
		}
	}

	iter := 0
	for h.Len() > 0 {
		iter++
		if iter%greedyCancelStride == 0 && ctx.Err() != nil {
			return nil, ctx.Err()
		}
		top := heap.Pop(h).(mergeEntry)
		ra, rb := find(top.a), find(top.b)
		if ra == rb {
			continue // already merged
		}
		cur, ok := pos[ra][rb]
		if !ok || math.Abs(cur-top.pos) > 1e-12 || top.pos <= 0 {
			continue // stale entry; a fresher one is in the heap
		}
		if nw, bad := neg[ra][rb]; bad && nw < tau {
			continue // hard constraint
		}
		// Merge the smaller adjacency into the larger.
		keep, drop := ra, rb
		if len(pos[keep])+len(neg[keep]) < len(pos[drop])+len(neg[drop]) {
			keep, drop = drop, keep
		}
		parent[drop] = keep
		delete(pos[keep], drop)
		delete(neg[keep], drop)
		delete(pos[drop], keep)
		delete(neg[drop], keep)
		for nb, w := range pos[drop] {
			if find(nb) == keep {
				continue // defensive; invariant keeps keys as roots
			}
			pos[keep][nb] += w
			pos[nb][keep] = pos[keep][nb]
			delete(pos[nb], drop)
		}
		for nb, w := range neg[drop] {
			if find(nb) == keep {
				continue
			}
			if curN, exists := neg[keep][nb]; !exists || w < curN {
				neg[keep][nb] = w
				neg[nb][keep] = w
			}
			delete(neg[nb], drop)
		}
		pos[drop] = nil
		neg[drop] = nil
		// Re-advertise the merged partition's eligible edges.
		for nb, w := range pos[keep] {
			if w > 0 && neg[keep][nb] >= tau {
				a, b := keep, nb
				if a > b {
					a, b = b, a
				}
				heap.Push(h, mergeEntry{pos: w, a: a, b: b})
			}
		}
	}

	groups := make(map[int][]int)
	for v := 0; v < n; v++ {
		r := find(v)
		groups[r] = append(groups[r], v)
	}
	parts := make(Partitioning, 0, len(groups))
	for _, members := range groups {
		sort.Ints(members)
		parts = append(parts, members)
	}
	sort.Slice(parts, func(i, j int) bool { return parts[i][0] < parts[j][0] })
	return parts, nil
}

// GreedyComponent runs Greedy on one materialized component and maps the
// resulting partitions back to original vertex ids.
func GreedyComponent(ctx context.Context, c graph.Component, tau float64) (Partitioning, error) {
	if len(c.Vertices) == 1 {
		return Partitioning{c.Vertices}, nil
	}
	sp, err := GreedyCtx(ctx, c.Sub, tau)
	if err != nil {
		return nil, err
	}
	parts := make(Partitioning, len(sp))
	for pi, p := range sp {
		mapped := make([]int, len(p))
		for i, v := range p {
			mapped[i] = c.Vertices[v]
		}
		sort.Ints(mapped)
		parts[pi] = mapped
	}
	return parts, nil
}

// GreedyPerComponent applies Greedy independently to every connected
// component of g (the paper's divide-and-conquer, Appendix F). Results are
// identical to Greedy on the whole graph — merges never cross components —
// but bookkeeping stays small per component.
func GreedyPerComponent(g *graph.Graph, tau float64) Partitioning {
	var parts Partitioning
	for _, c := range g.Decompose() {
		sp, _ := GreedyComponent(context.Background(), c, tau)
		parts = append(parts, sp...)
	}
	sort.Slice(parts, func(i, j int) bool { return parts[i][0] < parts[j][0] })
	return parts
}
