package synthesis

import (
	"sort"

	"mapsynth/internal/graph"
)

// MaxExactVertices bounds Exact's input size; beyond it the search space
// (Bell numbers) is impractical.
const MaxExactVertices = 12

// Exact solves Problem 11 optimally by enumerating set partitions with
// branch-and-bound pruning on the negative constraint. It panics if the
// graph has more than MaxExactVertices vertices. Intended for tests and the
// greedy-vs-optimal ablation bench.
func Exact(g *graph.Graph, tau float64) Partitioning {
	n := g.NumVertices()
	if n > MaxExactVertices {
		panic("synthesis.Exact: graph too large")
	}
	// assignment[v] = group index; groups are numbered contiguously to
	// enumerate each set partition exactly once (restricted growth strings).
	assignment := make([]int, n)
	best := make([]int, n)
	bestScore := -1.0

	// Precompute adjacency weights for O(1) incremental scoring.
	posW := make([][]float64, n)
	negBad := make([][]bool, n)
	for i := 0; i < n; i++ {
		posW[i] = make([]float64, n)
		negBad[i] = make([]bool, n)
	}
	for _, e := range g.Edges() {
		posW[e.A][e.B] = e.Pos
		posW[e.B][e.A] = e.Pos
		if e.Neg < tau {
			negBad[e.A][e.B] = true
			negBad[e.B][e.A] = true
		}
	}

	var rec func(v, maxGroup int, score float64)
	rec = func(v, maxGroup int, score float64) {
		if v == n {
			if score > bestScore {
				bestScore = score
				copy(best, assignment)
			}
			return
		}
		for grp := 0; grp <= maxGroup+1; grp++ {
			ok := true
			add := 0.0
			for u := 0; u < v; u++ {
				if assignment[u] != grp {
					continue
				}
				if negBad[u][v] {
					ok = false
					break
				}
				add += posW[u][v]
			}
			if !ok {
				continue
			}
			assignment[v] = grp
			ng := maxGroup
			if grp > maxGroup {
				ng = grp
			}
			rec(v+1, ng, score+add)
		}
	}
	rec(0, -1, 0)

	groups := make(map[int][]int)
	for v, gI := range best {
		groups[gI] = append(groups[gI], v)
	}
	parts := make(Partitioning, 0, len(groups))
	for _, members := range groups {
		sort.Ints(members)
		parts = append(parts, members)
	}
	sort.Slice(parts, func(i, j int) bool { return parts[i][0] < parts[j][0] })
	return parts
}
