package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"mapsynth/pkg/client"
)

// Roll ships one corpus's snapshot across the replica set: download the
// source peer's live v2 bytes, then upload them to every other alive peer
// one at a time. Each upload is an atomic version swap node-side, and the
// walk is strictly sequential, so at any instant at most one replica is
// mid-install and the rest serve — a corpus reload with zero cluster-wide
// downtime. source == "" picks the alive replica with the highest probed
// version; after the walk every touched peer is re-probed so version-aware
// routing sees the new state immediately.
//
// Deltas are preferred: when a peer's last probe reported the snapshot CRC
// it serves, the coordinator asks the source for a delta against that base
// (?since_crc) and ships only changed sections. Any miss — the source no
// longer holds the base, the delta wouldn't save bytes, or the peer refuses
// the delta (its state moved since the probe) — falls back to the full
// image for that peer; the roll never fails because an optimization did.
func (co *Coordinator) Roll(ctx context.Context, corpus, source string) (*client.RollReport, error) {
	t0 := time.Now()
	if corpus == "" {
		corpus = client.DefaultCorpus
	}
	src, err := co.rollSource(corpus, source)
	if err != nil {
		return nil, err
	}
	data, version, err := src.cli.Corpus(corpus).Snapshot(ctx)
	if err != nil {
		return nil, fmt.Errorf("cluster: downloading %s/%s: %w", src.peer.Name, corpus, err)
	}
	rep := &client.RollReport{
		Corpus:        corpus,
		Source:        src.peer.Name,
		SourceVersion: version,
		Bytes:         int64(len(data)),
	}
	for _, pc := range co.peers {
		if pc == src || !pc.status.Load().alive {
			continue
		}
		payload, isDelta := data, false
		if ch, ok := pc.status.Load().corpora[corpus]; ok && ch.SnapshotCRC != "" {
			if res, derr := src.cli.Corpus(corpus).SnapshotSince(ctx, 0, ch.SnapshotCRC); derr == nil &&
				res.Delta && res.Version == version {
				payload, isDelta = res.Data, true
			}
		}
		put, err := pc.cli.Corpus(corpus).Upload(ctx, payload)
		if err != nil && isDelta {
			// The peer's state moved since the probe (or the delta's base
			// CRC check tripped): retry with the full image before giving
			// up on the peer.
			co.log.Warn("delta roll refused, retrying full",
				"peer", pc.peer.Name, "corpus", corpus, "error", err)
			payload, isDelta = data, false
			put, err = pc.cli.Corpus(corpus).Upload(ctx, payload)
		}
		if err != nil {
			// Stop the walk at the first failure: the already-rolled peers
			// keep the new state (every install was atomic), the rest keep
			// the old, and the operator re-rolls after fixing the peer.
			return rep, fmt.Errorf("cluster: uploading to %s (rolled %d peers): %w",
				pc.peer.Name, len(rep.Rolled), err)
		}
		co.log.Info("replica rolled", "peer", pc.peer.Name, "corpus", corpus,
			"version", put.Version, "delta", isDelta, "bytes", len(payload))
		rep.Rolled = append(rep.Rolled, client.RolledPeer{
			Peer: pc.peer.Name, Version: put.Version, Delta: isDelta, Bytes: int64(len(payload))})
		rep.ShippedBytes += int64(len(payload))
		co.probePeer(ctx, pc)
	}
	co.probePeer(ctx, src)
	rep.DurationMs = float64(time.Since(t0).Microseconds()) / 1000
	return rep, nil
}

// rollSource resolves the peer to ship from: the named one (which must be
// alive and hold the corpus), or the alive peer with the highest probed
// version of the corpus.
func (co *Coordinator) rollSource(corpus, source string) (*peerConn, error) {
	if source != "" {
		for _, pc := range co.peers {
			if pc.peer.Name != source {
				continue
			}
			if !pc.status.Load().alive {
				return nil, fmt.Errorf("cluster: roll source %q is not alive", source)
			}
			return pc, nil
		}
		return nil, fmt.Errorf("cluster: no peer named %q", source)
	}
	var best *peerConn
	bestVer := int64(-1)
	for _, pc := range co.peers {
		st := pc.status.Load()
		if !st.alive {
			continue
		}
		if ch, ok := st.corpora[corpus]; ok && ch.Version > bestVer {
			best, bestVer = pc, ch.Version
		}
	}
	if best == nil {
		return nil, fmt.Errorf("cluster: no alive peer holds corpus %q", corpus)
	}
	return best, nil
}

// handleRoll is POST /v1/cluster/roll, the HTTP face of Roll.
func (co *Coordinator) handleRoll(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, r, codeMethodNotAllowed, "POST required")
		return
	}
	var req client.RollRequest
	if r.Body != nil {
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil && err.Error() != "EOF" {
			writeError(w, r, codeBadRequest, "bad request body: "+err.Error())
			return
		}
	}
	rep, err := co.Roll(r.Context(), req.Corpus, req.Source)
	if err != nil {
		if rep != nil && len(rep.Rolled) > 0 {
			// A partial roll is reported as unprocessable with the progress
			// embedded, so the operator knows exactly which replicas moved.
			writeJSON(w, http.StatusUnprocessableEntity, map[string]any{
				"error": map[string]any{
					"code":       codeUnprocessable,
					"message":    err.Error(),
					"request_id": requestID(r),
				},
				"rolled": rep.Rolled,
			})
			return
		}
		writeError(w, r, codeUnprocessable, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, rep)
}
