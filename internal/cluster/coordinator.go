package cluster

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"io"
	"log/slog"
	"net/http"
	"net/http/httputil"
	"net/url"
	"strings"
	"sync/atomic"
	"time"

	"mapsynth/internal/pool"
	"mapsynth/pkg/client"
)

// Options configures a Coordinator.
type Options struct {
	// PeerTimeout bounds every proxied or scattered peer call; <= 0
	// selects 10s.
	PeerTimeout time.Duration
	// ProbeInterval paces the background health prober; <= 0 selects 2s.
	ProbeInterval time.Duration
	// Workers bounds the scatter fan-out concurrency; < 1 selects
	// GOMAXPROCS.
	Workers int
	// HTTPClient overrides the transport used for probes and scattered
	// calls (tests inject the httptest client). Proxied requests use the
	// default transport regardless.
	HTTPClient *http.Client
	// Logger receives structured coordinator logs; nil discards them.
	Logger *slog.Logger
}

// peerConn is one peer plus its runtime machinery: a typed SDK client for
// probes and scatter, a reverse proxy for point-to-point routing, and the
// latest probe result.
type peerConn struct {
	peer   Peer
	cli    *client.Client
	proxy  *httputil.ReverseProxy
	status atomic.Pointer[peerStatus]
}

// peerStatus is one probe's outcome.
type peerStatus struct {
	alive   bool
	err     string
	probed  time.Time
	corpora map[string]client.CorpusHealth
}

// Coordinator fronts a topology of serve peers as one logical service; see
// the package comment for the routing rules.
type Coordinator struct {
	topo  *Topology
	peers []*peerConn
	opts  Options
	pool  *pool.Pool
	log   *slog.Logger
	hc    *http.Client
	rr    atomic.Uint64
}

// New validates the topology and returns a Coordinator. Peers start
// unprobed (not alive); call Start or ProbeOnce before serving traffic.
func New(topo *Topology, opts Options) (*Coordinator, error) {
	if opts.PeerTimeout <= 0 {
		opts.PeerTimeout = 10 * time.Second
	}
	if opts.ProbeInterval <= 0 {
		opts.ProbeInterval = 2 * time.Second
	}
	log := opts.Logger
	if log == nil {
		log = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	hc := opts.HTTPClient
	if hc == nil {
		hc = &http.Client{Timeout: opts.PeerTimeout}
	}
	co := &Coordinator{
		topo: topo,
		opts: opts,
		pool: pool.New(opts.Workers),
		log:  log,
		hc:   hc,
	}
	for i := range topo.Peers {
		p := topo.Peers[i]
		target, err := url.Parse(p.Addr)
		if err != nil {
			return nil, err
		}
		pc := &peerConn{
			peer: p,
			// Zero SDK retries: the coordinator's job is honest routing,
			// not hiding peer 429s from clients.
			cli: client.New(p.Addr, client.WithHTTPClient(hc), client.WithRetries(0)),
		}
		proxy := httputil.NewSingleHostReverseProxy(target)
		proxy.ErrorHandler = func(w http.ResponseWriter, r *http.Request, err error) {
			// The client hanging up mid-proxy (context canceled) says
			// nothing about the peer — only a peer-side failure (transport
			// error or the per-peer deadline) marks it dead so the next
			// request routes around it; the prober rediscovers it later.
			if r.Context().Err() != nil && !errors.Is(context.Cause(r.Context()), errPeerTimeout) {
				return
			}
			pc.markDead(err)
			co.log.Warn("peer proxy failed", "peer", p.Name, "error", err, "request_id", requestID(r))
			writeError(w, r, codeUnavailable, "peer "+p.Name+" unreachable: "+err.Error())
		}
		pc.proxy = proxy
		pc.status.Store(&peerStatus{})
		co.peers = append(co.peers, pc)
	}
	return co, nil
}

// errPeerTimeout is the cause stamped on the per-peer proxy deadline, so
// the proxy's ErrorHandler can tell "the peer is too slow" (mark it dead)
// from "the client hung up" (not the peer's fault).
var errPeerTimeout = errors.New("cluster: peer deadline exceeded")

func (pc *peerConn) markDead(err error) {
	old := pc.status.Load()
	pc.status.Store(&peerStatus{
		alive:   false,
		err:     err.Error(),
		probed:  time.Now(),
		corpora: old.corpora,
	})
}

// Topology returns the static layout the coordinator serves.
func (co *Coordinator) Topology() *Topology { return co.topo }

// Start launches the background health prober (one immediate probe, then
// every ProbeInterval) until ctx is cancelled.
func (co *Coordinator) Start(ctx context.Context) {
	co.ProbeOnce(ctx)
	go func() {
		t := time.NewTicker(co.opts.ProbeInterval)
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-t.C:
				co.ProbeOnce(ctx)
			}
		}
	}()
}

// Handler returns the coordinator's HTTP surface: the cluster endpoints
// plus a catch-all that routes every v1 (and legacy) path to peers.
func (co *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/cluster", co.getOnly(co.handleCluster))
	mux.HandleFunc("/v1/cluster/roll", co.handleRoll)
	mux.HandleFunc("/v1/healthz", co.getOnly(co.handleHealthz))
	mux.HandleFunc("/healthz", co.getOnly(co.handleHealthz))
	mux.HandleFunc("/", co.route)
	return withRequestID(mux)
}

func (co *Coordinator) getOnly(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			writeError(w, r, codeMethodNotAllowed, "GET required")
			return
		}
		h(w, r)
	}
}

// corpusOf extracts the corpus a path targets: the {name} segment of
// /v1/corpora/{name}/..., the default corpus for every unscoped path.
func corpusOf(path string) string {
	const pfx = "/v1/corpora/"
	if !strings.HasPrefix(path, pfx) {
		return client.DefaultCorpus
	}
	rest := path[len(pfx):]
	if i := strings.IndexByte(rest, '/'); i >= 0 {
		rest = rest[:i]
	}
	if rest == "" {
		return client.DefaultCorpus
	}
	return rest
}

// route is the per-request data path. Preference order:
//
//  1. an alive full replica at the freshest probed version of the target
//     corpus — reverse-proxied, round-robin among equals;
//  2. no replica but a typed query endpoint — scatter across the alive
//     partial peers and merge;
//  3. otherwise 503: the surface (batch streams, admin) needs a replica.
func (co *Coordinator) route(w http.ResponseWriter, r *http.Request) {
	corpus := corpusOf(r.URL.Path)
	if pc := co.pickReplica(corpus); pc != nil {
		ctx, cancel := context.WithTimeoutCause(r.Context(), co.opts.PeerTimeout, errPeerTimeout)
		defer cancel()
		pc.proxy.ServeHTTP(w, r.WithContext(ctx))
		return
	}
	if op := typedOp(r.URL.Path); op != "" {
		co.scatter(w, r, corpus, op)
		return
	}
	writeError(w, r, codeUnavailable,
		"no alive full replica for corpus "+corpus+" (endpoint cannot be scattered)")
}

// pickReplica returns the next alive full-replica peer serving the corpus
// at the freshest probed version, round-robin among the peers tied for
// freshest; nil when none is alive.
func (co *Coordinator) pickReplica(corpus string) *peerConn {
	var best []*peerConn
	bestVer := int64(-1)
	for _, pc := range co.peers {
		st := pc.status.Load()
		if !st.alive || !pc.peer.FullCover(co.topo.NumShards) {
			continue
		}
		ver := int64(0)
		if ch, ok := st.corpora[corpus]; ok {
			ver = ch.Version
		}
		switch {
		case ver > bestVer:
			bestVer, best = ver, best[:0]
			best = append(best, pc)
		case ver == bestVer:
			best = append(best, pc)
		}
	}
	if len(best) == 0 {
		return nil
	}
	return best[int(co.rr.Add(1)-1)%len(best)]
}

// alivePeersCovering returns the alive peers holding at least one shard of
// the corpus (all alive peers, in a shard-partitioned world), plus the
// shards with no alive peer.
func (co *Coordinator) alivePeersCovering() (alive []*peerConn, missing []int) {
	aliveSet := make(map[string]bool)
	for _, pc := range co.peers {
		if pc.status.Load().alive {
			alive = append(alive, pc)
			aliveSet[pc.peer.Name] = true
		}
	}
	missing = co.topo.missingShards(func(p Peer) bool { return aliveSet[p.Name] })
	return alive, missing
}

// ---- error envelope + request IDs ----
//
// The coordinator speaks the exact v1 envelope of internal/serve so
// clients cannot tell a coordinator error from a node error. The helpers
// are deliberately duplicated rather than imported: internal/cluster
// depends only on pkg/client, never on internal/serve.

type errorCode string

const (
	codeBadRequest       errorCode = "bad_request"
	codeNotFound         errorCode = "not_found"
	codeMethodNotAllowed errorCode = "method_not_allowed"
	codeUnprocessable    errorCode = "unprocessable"
	codeUnavailable      errorCode = "not_ready"
)

func statusFor(code errorCode) int {
	switch code {
	case codeBadRequest:
		return http.StatusBadRequest
	case codeNotFound:
		return http.StatusNotFound
	case codeMethodNotAllowed:
		return http.StatusMethodNotAllowed
	case codeUnprocessable:
		return http.StatusUnprocessableEntity
	case codeUnavailable:
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

func writeError(w http.ResponseWriter, r *http.Request, code errorCode, msg string) {
	writeJSON(w, statusFor(code), map[string]any{"error": map[string]any{
		"code":       code,
		"message":    msg,
		"request_id": requestID(r),
	}})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

type ctxKey int

const requestIDKey ctxKey = iota

func requestID(r *http.Request) string {
	id, _ := r.Context().Value(requestIDKey).(string)
	return id
}

// withRequestID assigns every request an ID (the client's plausible
// X-Request-ID or a fresh one), echoes it in the response header, and —
// crucially for a coordinator — stamps it on the request itself so proxied
// and scattered peer calls carry the same ID end to end.
func withRequestID(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := clientRequestID(r.Header.Get("X-Request-ID"))
		if id == "" {
			id = newRequestID()
			r.Header.Set("X-Request-ID", id)
		}
		w.Header().Set("X-Request-ID", id)
		h.ServeHTTP(w, r.WithContext(context.WithValue(r.Context(), requestIDKey, id)))
	})
}

func clientRequestID(s string) string {
	if len(s) == 0 || len(s) > 64 {
		return ""
	}
	for i := 0; i < len(s); i++ {
		if s[i] <= ' ' || s[i] > '~' {
			return ""
		}
	}
	return s
}

func newRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}
