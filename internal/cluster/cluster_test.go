package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"mapsynth/internal/mapping"
	"mapsynth/internal/serve"
	"mapsynth/internal/snapshot"
	"mapsynth/internal/table"
	"mapsynth/pkg/client"
)

// codedMappings builds one mapping whose right side is prefix-coded, so a
// response proves which node (or data half) answered.
func codedMappings(prefix string, states ...string) []*mapping.Mapping {
	if len(states) == 0 {
		states = []string{"California", "Washington", "Oregon", "Texas"}
	}
	coded := make([]string, len(states))
	for i, s := range states {
		coded[i] = prefix + "-" + s[:2]
	}
	var bts []*table.BinaryTable
	for i := 0; i < 3; i++ {
		bts = append(bts, table.NewBinaryTable(i, i, fmt.Sprintf("%s%d.example", prefix, i), "s", "c", states, coded))
	}
	return []*mapping.Mapping{mapping.Build(0, bts)}
}

// testNode boots one in-process serve node and returns its base URL and a
// shutdown func.
func testNode(t *testing.T, maps []*mapping.Mapping) (*httptest.Server, *serve.Server) {
	t.Helper()
	srv := serve.NewFromMappings(maps, serve.Options{Shards: 1, CacheSize: 16})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts, srv
}

// newTestCoordinator builds a probed coordinator over the given peers.
func newTestCoordinator(t *testing.T, peers []Peer, numShards int) *Coordinator {
	t.Helper()
	topo, err := NewTopology(peers, numShards)
	if err != nil {
		t.Fatal(err)
	}
	co, err := New(topo, Options{PeerTimeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	co.ProbeOnce(context.Background())
	return co
}

func TestParsePeers(t *testing.T) {
	peers, err := ParsePeers("a=http://h1:1,b=h2:2,c=http://h3:3=0+2")
	if err != nil {
		t.Fatal(err)
	}
	want := []Peer{
		{Name: "a", Addr: "http://h1:1"},
		{Name: "b", Addr: "http://h2:2"}, // scheme defaulted
		{Name: "c", Addr: "http://h3:3", Shards: []int{0, 2}},
	}
	if !reflect.DeepEqual(peers, want) {
		t.Errorf("ParsePeers = %+v, want %+v", peers, want)
	}
	for _, bad := range []string{"", "a", "=x", "a=b=zz", "bad name!=http://x"} {
		if _, err := ParsePeers(bad); err == nil {
			t.Errorf("ParsePeers(%q) accepted", bad)
		}
	}
	if _, err := NewTopology(peers, 2); err == nil {
		t.Error("NewTopology accepted shard 2 in a 2-shard topology")
	}
	topo, err := NewTopology(peers, 0)
	if err != nil {
		t.Fatal(err)
	}
	if topo.NumShards != 3 {
		t.Errorf("inferred NumShards = %d, want 3", topo.NumShards)
	}
}

func TestMissingShards(t *testing.T) {
	topo, err := NewTopology([]Peer{
		{Name: "a", Addr: "http://a", Shards: []int{0, 1}},
		{Name: "b", Addr: "http://b", Shards: []int{1, 2}},
	}, 3)
	if err != nil {
		t.Fatal(err)
	}
	all := func(Peer) bool { return true }
	if got := topo.missingShards(all); got != nil {
		t.Errorf("full coverage missing = %v", got)
	}
	onlyA := func(p Peer) bool { return p.Name == "a" }
	if got := topo.missingShards(onlyA); !reflect.DeepEqual(got, []int{2}) {
		t.Errorf("a-only missing = %v, want [2]", got)
	}
	none := func(Peer) bool { return false }
	if got := topo.missingShards(none); !reflect.DeepEqual(got, []int{0, 1, 2}) {
		t.Errorf("none missing = %v, want [0 1 2]", got)
	}
}

// TestReplicaProxyRouting: with full replicas the coordinator reverse-
// proxies point-to-point — every endpoint works, answers round-robin
// across replicas, and a dead replica is routed around after one probe.
func TestReplicaProxyRouting(t *testing.T) {
	ts1, _ := testNode(t, codedMappings("N"))
	ts2, _ := testNode(t, codedMappings("N"))
	co := newTestCoordinator(t, []Peer{
		{Name: "n1", Addr: ts1.URL},
		{Name: "n2", Addr: ts2.URL},
	}, 0)
	front := httptest.NewServer(co.Handler())
	t.Cleanup(front.Close)
	c := client.New(front.URL, client.WithRetries(0))

	ctx := context.Background()
	for i := 0; i < 4; i++ {
		lr, err := c.Lookup(ctx, "California")
		if err != nil {
			t.Fatalf("lookup %d: %v", i, err)
		}
		if !lr.Found || lr.Value != "N-Ca" {
			t.Fatalf("lookup %d = %+v", i, lr)
		}
	}

	// Batch NDJSON streams through the proxy untouched.
	var lines int
	trailer, err := c.BatchAutoFill(ctx, []client.AutoFillRequest{
		{ID: "r1", Column: []string{"California", "Washington"}},
	}, func(bl client.BatchLine[client.AutoFillResponse]) error {
		lines++
		return nil
	})
	if err != nil || trailer == nil {
		t.Fatalf("batch through coordinator: %v", err)
	}
	if lines != 1 {
		t.Errorf("batch lines = %d, want 1", lines)
	}

	// The cluster view shows both peers alive and not degraded.
	info, err := c.Cluster(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if info.Degraded || len(info.Peers) != 2 || !info.Peers[0].Alive || !info.Peers[1].Alive {
		t.Fatalf("cluster info = %+v", info)
	}
	if v := info.Peers[0].Corpora["default"].Version; v != 1 {
		t.Errorf("probed version = %d, want 1", v)
	}

	// Kill n1: after a probe the coordinator routes everything to n2.
	ts1.Close()
	co.ProbeOnce(ctx)
	for i := 0; i < 3; i++ {
		lr, err := c.Lookup(ctx, "California")
		if err != nil || !lr.Found {
			t.Fatalf("post-death lookup %d: %v %+v", i, err, lr)
		}
	}
	info, err = c.Cluster(ctx)
	if err != nil {
		t.Fatal(err)
	}
	alive := 0
	for _, p := range info.Peers {
		if p.Alive {
			alive++
		}
	}
	if alive != 1 {
		t.Errorf("alive after kill = %d, want 1", alive)
	}
}

// TestVersionAwareRouting: when replicas hold different corpus versions,
// the coordinator routes only to the freshest — the property that makes a
// rolling snapshot install invisible to clients.
func TestVersionAwareRouting(t *testing.T) {
	ts1, _ := testNode(t, codedMappings("OLD"))
	ts2, srv2 := testNode(t, codedMappings("OLD"))
	// Advance n2 to version 2 with new data.
	if _, err := srv2.AddCorpus("default", codedMappings("NEW")); err != nil {
		t.Fatal(err)
	}
	co := newTestCoordinator(t, []Peer{
		{Name: "n1", Addr: ts1.URL},
		{Name: "n2", Addr: ts2.URL},
	}, 0)
	front := httptest.NewServer(co.Handler())
	t.Cleanup(front.Close)
	c := client.New(front.URL, client.WithRetries(0))

	// Every request must land on n2 (version 2), never the stale n1.
	for i := 0; i < 6; i++ {
		lr, err := c.Lookup(context.Background(), "California")
		if err != nil {
			t.Fatal(err)
		}
		if lr.Value != "NEW-Ca" {
			t.Fatalf("request %d answered by stale replica: %+v", i, lr)
		}
	}
}

// TestScatterGather: a corpus partitioned across two peers answers through
// the merge path; killing one peer degrades honestly instead of failing.
func TestScatterGather(t *testing.T) {
	// Shard 0 holds the state mapping, shard 1 a disjoint vocabulary.
	tsA, _ := testNode(t, codedMappings("A", "California", "Washington"))
	tsB, _ := testNode(t, codedMappings("B", "Oregon", "Texas", "Nevada"))
	co := newTestCoordinator(t, []Peer{
		{Name: "a", Addr: tsA.URL, Shards: []int{0}},
		{Name: "b", Addr: tsB.URL, Shards: []int{1}},
	}, 2)
	front := httptest.NewServer(co.Handler())
	t.Cleanup(front.Close)

	get := func(path string) (int, map[string]any) {
		t.Helper()
		resp, err := http.Get(front.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var m map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, m
	}

	// A key only peer b holds: the scatter merge must surface b's answer.
	code, m := get("/v1/lookup?key=Texas")
	if code != http.StatusOK || m["found"] != true || m["value"] != "B-Te" {
		t.Fatalf("scatter lookup = %d %v", code, m)
	}
	if m["degraded"] != false {
		t.Errorf("healthy scatter reports degraded: %v", m)
	}
	// A key only peer a holds.
	if _, m := get("/v1/lookup?key=California"); m["value"] != "A-Ca" {
		t.Errorf("lookup California = %v", m)
	}

	// Autofill scatters too.
	resp, err := http.Post(front.URL+"/v1/autofill", "application/json",
		strings.NewReader(`{"column":["Oregon","Texas"]}`))
	if err != nil {
		t.Fatal(err)
	}
	var af map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&af); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if af["found"] != true || af["degraded"] != false {
		t.Fatalf("scatter autofill = %v", af)
	}

	// Batch endpoints cannot scatter: with no full replica they 503 with
	// the structured envelope.
	resp, err = http.Post(front.URL+"/v1/batch/autofill", "application/x-ndjson",
		strings.NewReader(`{"column":["x"]}`+"\n"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("partitioned batch = %d, want 503", resp.StatusCode)
	}

	// Kill peer b: lookups for its keys degrade — still 200, best-effort
	// answer, with the missing shard named.
	tsB.Close()
	co.ProbeOnce(context.Background())
	code, m = get("/v1/lookup?key=Texas")
	if code != http.StatusOK {
		t.Fatalf("degraded lookup = %d %v", code, m)
	}
	if m["found"] != false || m["degraded"] != true {
		t.Errorf("degraded lookup = %v", m)
	}
	if ms, ok := m["missing_shards"].([]any); !ok || len(ms) != 1 || ms[0] != float64(1) {
		t.Errorf("missing_shards = %v", m["missing_shards"])
	}
	// Keys on the surviving peer still answer.
	if _, m := get("/v1/lookup?key=California"); m["value"] != "A-Ca" || m["degraded"] != true {
		t.Errorf("surviving-half lookup = %v", m)
	}
}

// TestRoll: snapshot shipping walks the replica set; afterwards every peer
// serves the source's data at a fresh version.
func TestRoll(t *testing.T) {
	ts1, srv1 := testNode(t, codedMappings("V1"))
	ts2, _ := testNode(t, codedMappings("V1"))
	ts3, _ := testNode(t, codedMappings("V1"))
	// Node 1 gets new data (version 2) — the state a roll must spread.
	if _, err := srv1.AddCorpus("default", codedMappings("V2")); err != nil {
		t.Fatal(err)
	}
	co := newTestCoordinator(t, []Peer{
		{Name: "n1", Addr: ts1.URL},
		{Name: "n2", Addr: ts2.URL},
		{Name: "n3", Addr: ts3.URL},
	}, 0)
	front := httptest.NewServer(co.Handler())
	t.Cleanup(front.Close)
	c := client.New(front.URL, client.WithRetries(0))

	rep, err := c.RollCluster(context.Background(), client.RollRequest{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Source != "n1" || rep.SourceVersion != 2 || len(rep.Rolled) != 2 {
		t.Fatalf("roll report = %+v", rep)
	}
	// Every node now answers with the new data, directly.
	for _, u := range []string{ts1.URL, ts2.URL, ts3.URL} {
		lr, err := client.New(u).Lookup(context.Background(), "California")
		if err != nil {
			t.Fatal(err)
		}
		if lr.Value != "V2-Ca" {
			t.Errorf("node %s after roll = %+v", u, lr)
		}
	}
	// And the cluster view agrees every replica is at version 2.
	info, err := c.Cluster(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range info.Peers {
		if v := p.Corpora["default"].Version; v != 2 {
			t.Errorf("peer %s version = %d, want 2", p.Name, v)
		}
	}
}

// TestRollDelta: a roll to peers whose probed state is CRC-identified ships
// deltas, not full images — and the result is byte-identical to a full roll.
func TestRollDelta(t *testing.T) {
	// Two mapping generations sharing most content: v2 changes one mapping
	// out of many, so a delta between their snapshots is small.
	generation := func(tag string) []*mapping.Mapping {
		maps := codedMappings(tag)
		for i := 1; i <= 20; i++ {
			ls, rs := make([]string, 8), make([]string, 8)
			for j := range ls {
				ls[j] = fmt.Sprintf("key-%d-%d", i, j)
				rs[j] = fmt.Sprintf("val-%d-%d", i, j)
			}
			bt := table.NewBinaryTable(100+i, 100+i, fmt.Sprintf("fill%d.example", i), "l", "r", ls, rs)
			maps = append(maps, mapping.Build(i, []*table.BinaryTable{bt}))
		}
		return maps
	}
	snap := func(maps []*mapping.Mapping) []byte {
		var buf bytes.Buffer
		if err := snapshot.WriteV2(&buf, maps); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	snapA, snapB := snap(generation("A")), snap(generation("B"))

	ts1, _ := testNode(t, codedMappings("seed"))
	ts2, _ := testNode(t, codedMappings("seed"))
	ts3, _ := testNode(t, codedMappings("seed"))
	ctx := context.Background()
	// Everyone starts on generation A (v2-backed, so each node's healthz
	// reports the snapshot CRC); the source then moves to B.
	for _, u := range []string{ts1.URL, ts2.URL, ts3.URL} {
		if _, err := client.New(u).Corpus("default").Upload(ctx, snapA); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := client.New(ts1.URL).Corpus("default").Upload(ctx, snapB); err != nil {
		t.Fatal(err)
	}
	co := newTestCoordinator(t, []Peer{
		{Name: "n1", Addr: ts1.URL},
		{Name: "n2", Addr: ts2.URL},
		{Name: "n3", Addr: ts3.URL},
	}, 0)
	front := httptest.NewServer(co.Handler())
	t.Cleanup(front.Close)

	rep, err := client.New(front.URL, client.WithRetries(0)).RollCluster(ctx, client.RollRequest{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Source != "n1" || len(rep.Rolled) != 2 {
		t.Fatalf("roll report = %+v", rep)
	}
	for _, rp := range rep.Rolled {
		if !rp.Delta {
			t.Errorf("peer %s rolled with a full image, want delta", rp.Peer)
		}
		if rp.Bytes >= rep.Bytes {
			t.Errorf("peer %s delta (%d bytes) not smaller than full (%d)", rp.Peer, rp.Bytes, rep.Bytes)
		}
	}
	if rep.ShippedBytes >= 2*rep.Bytes {
		t.Errorf("shipped %d bytes, full-image roll would be %d", rep.ShippedBytes, 2*rep.Bytes)
	}
	// Byte parity: every peer now serves exactly the source's image.
	for _, u := range []string{ts2.URL, ts3.URL} {
		data, _, err := client.New(u).Corpus("default").Snapshot(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(data, snapB) {
			t.Errorf("peer %s snapshot differs after delta roll", u)
		}
	}
}

// TestClusterClient: NewCluster bootstraps from the coordinator and routes
// queries directly to replicas.
func TestClusterClient(t *testing.T) {
	ts1, _ := testNode(t, codedMappings("N"))
	ts2, _ := testNode(t, codedMappings("N"))
	co := newTestCoordinator(t, []Peer{
		{Name: "n1", Addr: ts1.URL},
		{Name: "n2", Addr: ts2.URL},
	}, 0)
	front := httptest.NewServer(co.Handler())
	t.Cleanup(front.Close)

	cc, err := client.NewCluster(context.Background(), front.URL, client.WithRetries(0))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		lr, err := cc.Lookup(context.Background(), "California")
		if err != nil || !lr.Found {
			t.Fatalf("cluster client lookup %d: %v %+v", i, err, lr)
		}
	}
	af, err := cc.AutoFill(context.Background(), client.AutoFillRequest{Column: []string{"California"}})
	if err != nil || !af.Found {
		t.Fatalf("cluster client autofill: %v %+v", err, af)
	}
	// Batch goes through the coordinator.
	var lines int
	if _, err := cc.BatchAutoFill(context.Background(), []client.AutoFillRequest{
		{ID: "x", Column: []string{"California"}},
	}, func(client.BatchLine[client.AutoFillResponse]) error { lines++; return nil }); err != nil {
		t.Fatal(err)
	}
	if lines != 1 {
		t.Errorf("batch lines = %d", lines)
	}
}

// TestCoordinatorHealthz: ok with everyone up, degraded with partial
// coverage, 503 with nobody alive.
func TestCoordinatorHealthz(t *testing.T) {
	tsA, _ := testNode(t, codedMappings("A"))
	tsB, _ := testNode(t, codedMappings("B"))
	co := newTestCoordinator(t, []Peer{
		{Name: "a", Addr: tsA.URL, Shards: []int{0}},
		{Name: "b", Addr: tsB.URL, Shards: []int{1}},
	}, 2)
	front := httptest.NewServer(co.Handler())
	t.Cleanup(front.Close)

	status := func() (int, map[string]any) {
		resp, err := http.Get(front.URL + "/v1/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var m map[string]any
		_ = json.NewDecoder(resp.Body).Decode(&m)
		return resp.StatusCode, m
	}
	if code, m := status(); code != http.StatusOK || m["status"] != "ok" {
		t.Fatalf("healthy cluster = %d %v", code, m)
	}
	tsB.Close()
	co.ProbeOnce(context.Background())
	if code, m := status(); code != http.StatusOK || m["status"] != "degraded" {
		t.Fatalf("half-dead cluster = %d %v", code, m)
	}
	tsA.Close()
	co.ProbeOnce(context.Background())
	if code, _ := status(); code != http.StatusServiceUnavailable {
		t.Fatalf("dead cluster = %d, want 503", code)
	}
}
