package cluster

import (
	"context"
	"net/http"
	"sort"
	"time"

	"mapsynth/pkg/client"
)

// ProbeOnce probes every peer's /v1/healthz concurrently over the shared
// worker pool and records the results. A probe learns two things the
// router needs: liveness, and each corpus's version — the input to
// version-aware replica selection during a snapshot roll.
func (co *Coordinator) ProbeOnce(ctx context.Context) {
	_ = co.pool.ForEach(ctx, len(co.peers), func(i int) {
		co.probePeer(ctx, co.peers[i])
	})
}

func (co *Coordinator) probePeer(ctx context.Context, pc *peerConn) {
	ctx, cancel := context.WithTimeout(ctx, co.opts.PeerTimeout)
	defer cancel()
	h, err := pc.cli.Healthz(ctx)
	now := time.Now()
	if err != nil {
		wasAlive := pc.status.Load().alive
		pc.markDead(err)
		if wasAlive {
			co.log.Warn("peer down", "peer", pc.peer.Name, "error", err)
		}
		return
	}
	if !pc.status.Load().alive {
		co.log.Info("peer up", "peer", pc.peer.Name)
	}
	pc.status.Store(&peerStatus{alive: true, probed: now, corpora: h.Corpora})
}

// handleCluster answers GET /v1/cluster: the static topology annotated
// with the live probe view — the bootstrap surface of client.NewCluster.
func (co *Coordinator) handleCluster(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, co.clusterInfo())
}

func (co *Coordinator) clusterInfo() client.ClusterInfo {
	info := client.ClusterInfo{NumShards: co.topo.NumShards}
	now := time.Now()
	aliveSet := make(map[string]bool)
	for _, pc := range co.peers {
		st := pc.status.Load()
		cp := client.ClusterPeer{
			Name:       pc.peer.Name,
			Addr:       pc.peer.Addr,
			Shards:     pc.peer.Shards,
			Alive:      st.alive,
			Error:      st.err,
			AgeSeconds: -1,
		}
		if !st.probed.IsZero() {
			cp.AgeSeconds = now.Sub(st.probed).Seconds()
		}
		if st.alive {
			aliveSet[pc.peer.Name] = true
			cp.Corpora = make(map[string]client.ClusterCorpus, len(st.corpora))
			for name, ch := range st.corpora {
				cp.Corpora[name] = client.ClusterCorpus{
					Version:     ch.Version,
					Format:      ch.Format,
					Mappings:    ch.Mappings,
					SnapshotCRC: ch.SnapshotCRC,
				}
			}
		}
		info.Peers = append(info.Peers, cp)
	}
	sort.Slice(info.Peers, func(a, b int) bool { return info.Peers[a].Name < info.Peers[b].Name })
	info.MissingShards = co.topo.missingShards(func(p Peer) bool { return aliveSet[p.Name] })
	info.Degraded = len(info.MissingShards) > 0
	return info
}

// handleHealthz is the coordinator's own health: ok while every shard has
// an alive peer, degraded (still 200 — the coordinator itself is fine)
// while some are missing, and 503 not_ready only when no peer at all is
// alive, mirroring a single node's "no snapshot loaded yet".
func (co *Coordinator) handleHealthz(w http.ResponseWriter, r *http.Request) {
	info := co.clusterInfo()
	aliveCount := 0
	for _, p := range info.Peers {
		if p.Alive {
			aliveCount++
		}
	}
	if aliveCount == 0 {
		writeError(w, r, codeUnavailable, "no alive peers")
		return
	}
	status := "ok"
	if info.Degraded {
		status = "degraded"
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":         status,
		"peers":          len(info.Peers),
		"alive":          aliveCount,
		"num_shards":     info.NumShards,
		"missing_shards": info.MissingShards,
	})
}
