package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"sort"
	"strings"

	"mapsynth/pkg/client"
)

// typedOp recognizes the endpoints the coordinator can scatter and merge
// itself: the four single-query apps, in any of their spellings (legacy,
// /v1 unscoped, corpus-scoped). Batch streams are not scatterable — an
// NDJSON stream has one producer — and admin surfaces target one node by
// design; both require a full replica.
func typedOp(path string) string {
	if strings.Contains(path, "/batch/") {
		return ""
	}
	op := path[strings.LastIndexByte(path, '/')+1:]
	switch op {
	case "lookup", "autofill", "autocorrect", "autojoin":
		return op
	}
	return ""
}

// degradedExtra rides on every scattered answer: false/absent on a full
// fan-out, true plus the unanswered shard numbers when peers were down or
// errored. Clients get a best-effort answer and an honest account of what
// it might be missing, instead of a hard failure.
type degradedExtra struct {
	Degraded bool `json:"degraded"`
	// MissingShards lists the global shards no successful peer covered.
	MissingShards []int `json:"missing_shards,omitempty"`
}

// scatter fans one typed query out to every alive peer, merges the ranked
// results exactly as a single node merges its local shards, and reports
// coverage honestly.
func (co *Coordinator) scatter(w http.ResponseWriter, r *http.Request, corpus, op string) {
	alive, _ := co.alivePeersCovering()
	if len(alive) == 0 {
		writeError(w, r, codeUnavailable, "no alive peers")
		return
	}

	// Transient per-request SDK clients so every peer call carries this
	// request's X-Request-ID and X-Tenant end to end. client.New is a
	// struct allocation; the transport (co.hc) is shared.
	reqID := requestID(r)
	opts := []client.Option{
		client.WithHTTPClient(co.hc),
		client.WithRetries(0),
		client.WithRequestIDs(func() string { return reqID }),
	}
	if tenant := r.Header.Get("X-Tenant"); tenant != "" {
		opts = append(opts, client.WithTenant(tenant))
	}
	handles := make([]*client.Corpus, len(alive))
	for i, pc := range alive {
		handles[i] = client.New(pc.peer.Addr, opts...).Corpus(corpus)
	}

	var body []byte
	if r.Method == http.MethodPost {
		var err error
		if body, err = io.ReadAll(r.Body); err != nil {
			writeError(w, r, codeBadRequest, "reading request body: "+err.Error())
			return
		}
	}

	// fan runs one peer call per alive peer over the shared pool with a
	// per-peer deadline, then merges via the op-specific folder below.
	errs := make([]error, len(alive))
	fan := func(call func(ctx context.Context, i int) error) {
		_ = co.pool.ForEach(r.Context(), len(alive), func(i int) {
			ctx, cancel := context.WithTimeout(r.Context(), co.opts.PeerTimeout)
			defer cancel()
			errs[i] = call(ctx, i)
		})
	}
	// A peer that answered a well-formed error (e.g. 400 bad_request)
	// means the request itself is bad — relay the first such error rather
	// than calling the cluster degraded.
	relayBadRequest := func() bool {
		for _, err := range errs {
			var aerr *client.APIError
			if errors.As(err, &aerr) && aerr.Status < 500 && aerr.Status != http.StatusNotFound {
				writeJSON(w, aerr.Status, map[string]any{"error": map[string]any{
					"code":       aerr.Code,
					"message":    aerr.Message,
					"request_id": reqID,
				}})
				return true
			}
		}
		return false
	}

	switch op {
	case "lookup":
		key := r.URL.Query().Get("key")
		if r.Method != http.MethodGet {
			writeError(w, r, codeMethodNotAllowed, "GET required")
			return
		}
		if key == "" {
			writeError(w, r, codeBadRequest, "missing required query parameter: key")
			return
		}
		rs := make([]*client.LookupResponse, len(alive))
		fan(func(ctx context.Context, i int) error {
			var err error
			rs[i], err = handles[i].Lookup(ctx, key)
			return err
		})
		if relayBadRequest() {
			return
		}
		merged := mergeLookup(rs)
		if merged == nil {
			merged = &client.LookupResponse{Key: key}
		}
		co.respond(w, r, alive, errs, &struct {
			*client.LookupResponse
			degradedExtra
		}{LookupResponse: merged})

	case "autofill":
		var req client.AutoFillRequest
		if !decodeScatterBody(w, r, body, &req) {
			return
		}
		rs := make([]*client.AutoFillResponse, len(alive))
		fan(func(ctx context.Context, i int) error {
			var err error
			rs[i], err = handles[i].AutoFill(ctx, req)
			return err
		})
		if relayBadRequest() {
			return
		}
		co.respond(w, r, alive, errs, &struct {
			*client.AutoFillResponse
			degradedExtra
		}{AutoFillResponse: mergeAutoFill(rs, req.TopK)})

	case "autocorrect":
		var req client.AutoCorrectRequest
		if !decodeScatterBody(w, r, body, &req) {
			return
		}
		rs := make([]*client.AutoCorrectResponse, len(alive))
		fan(func(ctx context.Context, i int) error {
			var err error
			rs[i], err = handles[i].AutoCorrect(ctx, req)
			return err
		})
		if relayBadRequest() {
			return
		}
		co.respond(w, r, alive, errs, &struct {
			*client.AutoCorrectResponse
			degradedExtra
		}{AutoCorrectResponse: mergeAutoCorrect(rs, req.TopK)})

	case "autojoin":
		var req client.AutoJoinRequest
		if !decodeScatterBody(w, r, body, &req) {
			return
		}
		rs := make([]*client.AutoJoinResponse, len(alive))
		fan(func(ctx context.Context, i int) error {
			var err error
			rs[i], err = handles[i].AutoJoin(ctx, req)
			return err
		})
		if relayBadRequest() {
			return
		}
		co.respond(w, r, alive, errs, &struct {
			*client.AutoJoinResponse
			degradedExtra
		}{AutoJoinResponse: mergeAutoJoin(rs, req.TopK)})
	}
}

// respond stamps the coverage verdict onto the merged answer. The extra is
// reachable through the anonymous struct's embedded degradedExtra; v is
// passed as any, so set the fields via the concrete setter interface.
func (co *Coordinator) respond(w http.ResponseWriter, r *http.Request, alive []*peerConn, errs []error, v any) {
	ok := make(map[string]bool, len(alive))
	failed := 0
	for i, pc := range alive {
		if errs[i] == nil {
			ok[pc.peer.Name] = true
		} else {
			failed++
		}
	}
	missing := co.topo.missingShards(func(p Peer) bool { return ok[p.Name] })
	if ds, okCast := v.(degradedSetter); okCast {
		ds.setDegraded(len(missing) > 0 || len(ok) == 0, missing)
	}
	if len(ok) == 0 {
		// Every peer failed: there is no best-effort answer to degrade to.
		writeError(w, r, codeUnavailable, "all peers failed: "+errs[0].Error())
		return
	}
	if failed > 0 {
		co.log.Warn("degraded fan-out", "failed_peers", failed, "missing_shards", missing,
			"request_id", requestID(r))
	}
	writeJSON(w, http.StatusOK, v)
}

// degradedSetter is implemented by pointers to the anonymous response
// structs via their embedded degradedExtra.
type degradedSetter interface{ setDegraded(d bool, missing []int) }

func (de *degradedExtra) setDegraded(d bool, missing []int) {
	de.Degraded = d
	de.MissingShards = missing
}

func decodeScatterBody(w http.ResponseWriter, r *http.Request, body []byte, v any) bool {
	if r.Method != http.MethodPost {
		writeError(w, r, codeMethodNotAllowed, "POST required")
		return false
	}
	if len(body) > 0 {
		if err := json.Unmarshal(body, v); err != nil {
			writeError(w, r, codeBadRequest, "bad request body: "+err.Error())
			return false
		}
	}
	return true
}

// ---- merge rules ----
//
// Each folder keeps the answer a single node would have produced had it
// held all the data: prefer found over not-found, then the same dominance
// order the node-local rankers use (domains/support for lookup, most rows
// filled/corrected/bridged for the apps). Ties keep topology order, so
// merged answers are deterministic for a fixed peer set.

func mergeLookup(rs []*client.LookupResponse) *client.LookupResponse {
	var best *client.LookupResponse
	for _, r := range rs {
		if r == nil {
			continue
		}
		if best == nil {
			best = r
			continue
		}
		if !best.Found && r.Found {
			best = r
			continue
		}
		if best.Found && r.Found {
			if r.Domains > best.Domains || (r.Domains == best.Domains && r.Support > best.Support) {
				best = r
			}
		}
	}
	return best
}

func mergeAutoFill(rs []*client.AutoFillResponse, topK int) *client.AutoFillResponse {
	var best *client.AutoFillResponse
	var candidates []client.AutoFillCandidate
	for _, r := range rs {
		if r == nil {
			continue
		}
		candidates = append(candidates, r.Candidates...)
		if best == nil || (r.Found && !best.Found) ||
			(r.Found && best.Found && len(r.Filled) > len(best.Filled)) {
			best = r
		}
	}
	if best == nil {
		return &client.AutoFillResponse{}
	}
	out := *best
	out.Candidates = topCandidates(candidates, topK, func(c client.AutoFillCandidate) int { return len(c.Filled) })
	return &out
}

func mergeAutoCorrect(rs []*client.AutoCorrectResponse, topK int) *client.AutoCorrectResponse {
	var best *client.AutoCorrectResponse
	var candidates []client.AutoCorrectCandidate
	for _, r := range rs {
		if r == nil {
			continue
		}
		candidates = append(candidates, r.Candidates...)
		if best == nil || (r.Found && !best.Found) ||
			(r.Found && best.Found && len(r.Corrections) > len(best.Corrections)) {
			best = r
		}
	}
	if best == nil {
		return &client.AutoCorrectResponse{}
	}
	out := *best
	out.Candidates = topCandidates(candidates, topK, func(c client.AutoCorrectCandidate) int { return len(c.Corrections) })
	return &out
}

func mergeAutoJoin(rs []*client.AutoJoinResponse, topK int) *client.AutoJoinResponse {
	var best *client.AutoJoinResponse
	var candidates []client.AutoJoinCandidate
	for _, r := range rs {
		if r == nil {
			continue
		}
		candidates = append(candidates, r.Candidates...)
		if best == nil || (r.Found && !best.Found) ||
			(r.Found && best.Found && r.Bridged > best.Bridged) {
			best = r
		}
	}
	if best == nil {
		return &client.AutoJoinResponse{}
	}
	out := *best
	out.Candidates = topCandidates(candidates, topK, func(c client.AutoJoinCandidate) int { return c.Bridged })
	return &out
}

// topCandidates merges the peers' candidate lists into the best K by
// score, stable within equal scores. K <= 0 means the request did not ask
// for candidates; return none, like a single node.
func topCandidates[C any](cs []C, k int, score func(C) int) []C {
	if k <= 0 || len(cs) == 0 {
		return nil
	}
	sort.SliceStable(cs, func(a, b int) bool { return score(cs[a]) > score(cs[b]) })
	if len(cs) > k {
		cs = cs[:k]
	}
	return cs
}
