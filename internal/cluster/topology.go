// Package cluster turns N independent serve processes into one logical
// mapping service. A Coordinator owns a static topology of peers (name,
// address, shard assignment), probes their /v1/healthz for liveness and
// per-corpus versions, and fronts the whole v1 HTTP surface:
//
//   - when an alive peer covers every shard of the corpus (a replica), the
//     request is reverse-proxied point-to-point to the freshest such
//     replica, round-robin among equals — byte-identical answers, NDJSON
//     batch streaming included;
//   - when the corpus is partitioned across peers, the typed query
//     endpoints scatter to every alive peer holding a shard, merge the
//     ranked results with the same comparators a single node uses, and
//     degrade honestly: a partial fan-out answers with "degraded": true
//     plus the shard numbers that went unanswered;
//   - replication is snapshot shipping over the existing corpus surface —
//     Roll downloads the freshest replica's v2 snapshot bytes and PUTs
//     them peer by peer, so a corpus reload walks the replica set with
//     zero downtime (every swap is atomic node-side).
//
// The package deliberately speaks to peers only through pkg/client — the
// public SDK — so the coordinator exercises exactly the wire contract any
// external client gets.
package cluster

import (
	"fmt"
	"net/url"
	"sort"
	"strconv"
	"strings"
)

// Peer is one serve process in the topology.
type Peer struct {
	// Name is the peer's stable identity, [A-Za-z0-9._-]{1,64}.
	Name string
	// Addr is the peer's base URL, e.g. "http://10.0.0.7:8080".
	Addr string
	// Shards lists the global shard numbers this peer holds; empty means
	// the peer holds every shard (a full replica).
	Shards []int
}

// FullCover reports whether the peer holds every one of n shards. An empty
// shard list always covers; an explicit list covers when it contains each
// of 0..n-1.
func (p Peer) FullCover(n int) bool {
	if len(p.Shards) == 0 {
		return true
	}
	if n <= 0 {
		return false
	}
	have := make(map[int]bool, len(p.Shards))
	for _, s := range p.Shards {
		have[s] = true
	}
	for s := 0; s < n; s++ {
		if !have[s] {
			return false
		}
	}
	return true
}

// Topology is the static cluster layout the coordinator serves.
type Topology struct {
	Peers []Peer
	// NumShards is the global shard count partial peers are judged
	// against. Zero is legal only when every peer is a full replica.
	NumShards int
}

// ParsePeers parses the -peers flag grammar: comma-separated
//
//	name=addr[=s0+s1+...]
//
// entries, e.g. "a=http://10.0.0.1:8080,b=http://10.0.0.2:8080=0+1".
// A peer without a shard list is a full replica. Addresses without a
// scheme default to http://.
func ParsePeers(spec string) ([]Peer, error) {
	var peers []Peer
	for _, ent := range strings.Split(spec, ",") {
		ent = strings.TrimSpace(ent)
		if ent == "" {
			continue
		}
		parts := strings.SplitN(ent, "=", 3)
		if len(parts) < 2 || parts[0] == "" || parts[1] == "" {
			return nil, fmt.Errorf("cluster: bad peer %q (want name=addr[=s0+s1+...])", ent)
		}
		p := Peer{Name: parts[0], Addr: normalizeAddr(parts[1])}
		if !validPeerName(p.Name) {
			return nil, fmt.Errorf("cluster: bad peer name %q (want [A-Za-z0-9._-]{1,64})", p.Name)
		}
		if _, err := url.Parse(p.Addr); err != nil {
			return nil, fmt.Errorf("cluster: bad peer address %q: %v", parts[1], err)
		}
		if len(parts) == 3 && parts[2] != "" {
			for _, f := range strings.Split(parts[2], "+") {
				s, err := strconv.Atoi(strings.TrimSpace(f))
				if err != nil || s < 0 {
					return nil, fmt.Errorf("cluster: bad shard %q in peer %q", f, p.Name)
				}
				p.Shards = append(p.Shards, s)
			}
			sort.Ints(p.Shards)
		}
		peers = append(peers, p)
	}
	if len(peers) == 0 {
		return nil, fmt.Errorf("cluster: no peers in %q", spec)
	}
	return peers, nil
}

func normalizeAddr(addr string) string {
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	return strings.TrimRight(addr, "/")
}

func validPeerName(name string) bool {
	if len(name) == 0 || len(name) > 64 {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		if !(c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' ||
			c == '.' || c == '_' || c == '-') {
			return false
		}
	}
	return true
}

// NewTopology validates the peer set into a Topology. numShards <= 0 is
// inferred as max(explicit shard)+1 when any peer lists shards; it stays 0
// for an all-replica topology, where shard arithmetic is moot.
func NewTopology(peers []Peer, numShards int) (*Topology, error) {
	if len(peers) == 0 {
		return nil, fmt.Errorf("cluster: empty topology")
	}
	seen := make(map[string]bool, len(peers))
	maxShard := -1
	for _, p := range peers {
		if seen[p.Name] {
			return nil, fmt.Errorf("cluster: duplicate peer name %q", p.Name)
		}
		seen[p.Name] = true
		for _, s := range p.Shards {
			if s > maxShard {
				maxShard = s
			}
		}
	}
	if numShards <= 0 {
		numShards = maxShard + 1 // 0 when every peer is a full replica
	}
	for _, p := range peers {
		for _, s := range p.Shards {
			if s >= numShards {
				return nil, fmt.Errorf("cluster: peer %q holds shard %d but the topology has %d shards",
					p.Name, s, numShards)
			}
		}
	}
	return &Topology{Peers: peers, NumShards: numShards}, nil
}

// missingShards returns the shard numbers no peer accepted by keep covers,
// nil when everything is covered. With NumShards == 0 (all-replica
// topology) coverage means "at least one kept peer".
func (t *Topology) missingShards(keep func(p Peer) bool) []int {
	if t.NumShards == 0 {
		for _, p := range t.Peers {
			if keep(p) {
				return nil
			}
		}
		return []int{0}
	}
	covered := make([]bool, t.NumShards)
	for _, p := range t.Peers {
		if !keep(p) {
			continue
		}
		if len(p.Shards) == 0 {
			return nil
		}
		for _, s := range p.Shards {
			covered[s] = true
		}
	}
	var missing []int
	for s, ok := range covered {
		if !ok {
			missing = append(missing, s)
		}
	}
	return missing
}
