package baselines

import (
	"testing"

	"mapsynth/internal/graph"
	"mapsynth/internal/table"
)

func bin(id int, domain, ln, rn string, pairs [][2]string) *table.BinaryTable {
	ls := make([]string, len(pairs))
	rs := make([]string, len(pairs))
	for i, p := range pairs {
		ls[i] = p[0]
		rs[i] = p[1]
	}
	return table.NewBinaryTable(id, id, domain, ln, rn, ls, rs)
}

func TestUnionDomainGroupsByDomainAndHeaders(t *testing.T) {
	bins := []*table.BinaryTable{
		bin(0, "a.com", "country", "code", [][2]string{{"Japan", "JPN"}}),
		bin(1, "a.com", "country", "code", [][2]string{{"Peru", "PER"}}),
		bin(2, "b.com", "country", "code", [][2]string{{"Kenya", "KEN"}}),
		bin(3, "a.com", "city", "state", [][2]string{{"Austin", "Texas"}}),
	}
	groups := UnionDomain(bins)
	if len(groups) != 3 {
		t.Fatalf("groups = %d, want 3", len(groups))
	}
	// The a.com country group unions tables 0 and 1.
	found := false
	for _, g := range groups {
		if len(g) == 2 {
			found = true
		}
	}
	if !found {
		t.Errorf("no unioned group found: %v", groups)
	}
}

func TestUnionWebIgnoresDomain(t *testing.T) {
	bins := []*table.BinaryTable{
		bin(0, "a.com", "country", "code", [][2]string{{"Japan", "JPN"}}),
		bin(1, "b.com", "Country", "Code", [][2]string{{"Peru", "PER"}}), // case-insensitive headers
		bin(2, "c.com", "city", "state", [][2]string{{"Austin", "Texas"}}),
	}
	groups := UnionWeb(bins)
	if len(groups) != 2 {
		t.Fatalf("groups = %d, want 2", len(groups))
	}
}

func TestUnionDedupsPairs(t *testing.T) {
	bins := []*table.BinaryTable{
		bin(0, "a.com", "l", "r", [][2]string{{"x", "1"}, {"y", "2"}}),
		bin(1, "a.com", "l", "r", [][2]string{{"x", "1"}, {"z", "3"}}),
	}
	groups := UnionDomain(bins)
	if len(groups) != 1 || len(groups[0]) != 3 {
		t.Fatalf("groups = %v", groups)
	}
}

func TestSingleTablesDomainFilter(t *testing.T) {
	bins := []*table.BinaryTable{
		bin(0, "en.wikipedia.org", "l", "r", [][2]string{{"a", "1"}}),
		bin(1, "other.com", "l", "r", [][2]string{{"b", "2"}}),
	}
	if got := SingleTables(bins, "en.wikipedia.org"); len(got) != 1 {
		t.Errorf("wiki filter: %d lists", len(got))
	}
	if got := SingleTables(bins, ""); len(got) != 2 {
		t.Errorf("no filter: %d lists", len(got))
	}
}

func TestSchemaCCThresholdAndNegative(t *testing.T) {
	g := graph.New(3)
	g.AddEdge(0, 1, 0.9, 0)
	g.AddEdge(1, 2, 0.6, -0.5) // combined 0.1
	// Positive-only at threshold 0.5 merges everything.
	pos := SchemaCC(g, 0.5, false)
	if len(pos) != 1 {
		t.Errorf("SchemaPosCC groups = %v", pos)
	}
	// With negative signal the 1-2 edge drops below threshold.
	neg := SchemaCC(g, 0.5, true)
	if len(neg) != 2 {
		t.Errorf("SchemaCC groups = %v", neg)
	}
	// Very high threshold keeps everything apart.
	apart := SchemaCC(g, 0.95, true)
	if len(apart) != 3 {
		t.Errorf("high threshold groups = %v", apart)
	}
}

func TestCorrelationClustersPositiveComponents(t *testing.T) {
	// Two positive cliques joined by a negative edge must form >= 2 clusters.
	g := graph.New(6)
	g.AddEdge(0, 1, 0.9, 0)
	g.AddEdge(1, 2, 0.9, 0)
	g.AddEdge(0, 2, 0.9, 0)
	g.AddEdge(3, 4, 0.9, 0)
	g.AddEdge(4, 5, 0.9, 0)
	g.AddEdge(3, 5, 0.9, 0)
	g.AddEdge(2, 3, 0.1, -0.8) // net negative bridge
	groups := Correlation(g, 1, 0)
	if len(groups) < 2 {
		t.Fatalf("groups = %v, want at least the two cliques apart", groups)
	}
	// Every vertex appears exactly once.
	seen := map[int]int{}
	for _, grp := range groups {
		for _, v := range grp {
			seen[v]++
		}
	}
	for v := 0; v < 6; v++ {
		if seen[v] != 1 {
			t.Errorf("vertex %d appears %d times", v, seen[v])
		}
	}
}

func TestCorrelationDeterministicPerSeed(t *testing.T) {
	g := graph.New(8)
	for i := 0; i < 7; i++ {
		g.AddEdge(i, i+1, 0.5, 0)
	}
	a := Correlation(g, 42, 0)
	b := Correlation(g, 42, 0)
	if len(a) != len(b) {
		t.Fatalf("non-deterministic: %v vs %v", a, b)
	}
	for i := range a {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatalf("non-deterministic: %v vs %v", a, b)
			}
		}
	}
}

func TestWiseIntegratorGroupsBySimilarHeadersAndTypes(t *testing.T) {
	bins := []*table.BinaryTable{
		bin(0, "a.com", "country", "code", [][2]string{{"Japan", "JPN"}, {"Kenya", "KEN"}, {"Ghana", "GHA"}, {"Brazil", "BRA"}}),
		bin(1, "b.com", "country", "codes", [][2]string{{"Norway", "NOR"}, {"Chile", "CHL"}, {"Sweden", "SWE"}, {"Poland", "POL"}}),
		bin(2, "c.com", "country", "population", [][2]string{{"Japan", "125000000"}, {"Chile", "34000000"}, {"Ghana", "17000000"}, {"Sweden", "11000000"}}),
	}
	groups := WiseIntegrator(bins)
	// Tables 0 and 1 share identical left headers, contained right headers
	// ("code"/"codes") and code-typed rights; table 2's numeric right keeps
	// it apart.
	if len(groups) != 2 {
		t.Fatalf("groups = %v, want 2", groups)
	}
	if len(groups[0]) != 2 || groups[0][0] != 0 || groups[0][1] != 1 {
		t.Errorf("first group = %v", groups[0])
	}
}

func TestUnionGroups(t *testing.T) {
	bins := []*table.BinaryTable{
		bin(0, "a", "l", "r", [][2]string{{"x", "1"}}),
		bin(1, "a", "l", "r", [][2]string{{"x", "1"}, {"y", "2"}}),
	}
	lists := UnionGroups(bins, [][]int{{0, 1}})
	if len(lists) != 1 || len(lists[0]) != 2 {
		t.Errorf("UnionGroups = %v", lists)
	}
}

func TestValueTyping(t *testing.T) {
	if classifyValue("12345") != typeNumeric {
		t.Error("digits should be numeric")
	}
	if classifyValue("JPN") != typeCode {
		t.Error("short alpha should be code")
	}
	if classifyValue("United States") != typeText {
		t.Error("long names should be text")
	}
}
