package baselines

import (
	"mapsynth/internal/graph"
	"mapsynth/internal/unionfind"
)

// SchemaCC mimics pair-wise schema matchers that use the same positive and
// negative signals as Synthesis but aggregate binary match decisions by
// transitivity: two candidates land in the same cluster when any chain of
// pair-wise matches connects them (connected components). A pair matches
// when its combined score w+ + w- reaches the threshold. The paper sweeps
// thresholds in [0, 1] and reports the best; callers do the same.
//
// With useNegative false this is SchemaPosCC: the negative signal is
// ignored entirely, as in the schema-matching literature.
func SchemaCC(g *graph.Graph, threshold float64, useNegative bool) [][]int {
	uf := unionfind.New(g.NumVertices())
	for _, e := range g.Edges() {
		score := e.Pos
		if useNegative {
			score += e.Neg
		}
		if score >= threshold && score > 0 {
			uf.Union(e.A, e.B)
		}
	}
	return groupsSorted(uf)
}

// groupsSorted converts union-find groups to deterministically ordered
// component lists.
func groupsSorted(uf *unionfind.UF) [][]int {
	gm := uf.Groups()
	reps := make([]int, 0, len(gm))
	for r := range gm {
		reps = append(reps, r)
	}
	// Groups() returns members ascending; order groups by smallest member.
	out := make([][]int, 0, len(gm))
	minOf := make(map[int]int, len(gm))
	for r, members := range gm {
		minOf[r] = members[0]
	}
	sortInts(reps, func(a, b int) bool { return minOf[a] < minOf[b] })
	for _, r := range reps {
		out = append(out, gm[r])
	}
	return out
}

func sortInts(s []int, less func(a, b int) bool) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && less(s[j], s[j-1]); j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
