package baselines

import (
	"sort"
	"unicode"

	"mapsynth/internal/strmatch"
	"mapsynth/internal/table"
	"mapsynth/internal/textnorm"
	"mapsynth/internal/unionfind"
)

// valueType is WiseIntegrator's coarse value typing.
type valueType int

const (
	typeText    valueType = iota // multi-word or long alphabetic values
	typeCode                     // short alphanumeric codes
	typeNumeric                  // digit-dominated values
)

// WiseIntegrator implements the collective web-interface schema matcher of
// He, Meng, Yu & Wu [22, 23] adapted to table columns: candidates are
// clustered greedily by linguistic similarity of attribute names (exact or
// near-exact normalized headers) combined with compatibility of value types.
// It uses no instance-level FD reasoning, so confusable code systems with
// matching headers merge — the failure mode the paper contrasts against.
func WiseIntegrator(bins []*table.BinaryTable) [][]int {
	type sig struct {
		l, r   string
		lt, rt valueType
	}
	sigs := make([]sig, len(bins))
	for i, b := range bins {
		sigs[i] = sig{
			l:  textnorm.Normalize(b.LeftName),
			r:  textnorm.Normalize(b.RightName),
			lt: typeOfColumn(b, true),
			rt: typeOfColumn(b, false),
		}
	}
	// Bucket candidates by exact signature first (cheap), then greedily
	// merge buckets whose headers are within edit distance 1 per side and
	// whose value types agree.
	bucketOf := make(map[sig][]int)
	for i, s := range sigs {
		bucketOf[s] = append(bucketOf[s], i)
	}
	keys := make([]sig, 0, len(bucketOf))
	for s := range bucketOf {
		keys = append(keys, s)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].l != keys[j].l {
			return keys[i].l < keys[j].l
		}
		if keys[i].r != keys[j].r {
			return keys[i].r < keys[j].r
		}
		if keys[i].lt != keys[j].lt {
			return keys[i].lt < keys[j].lt
		}
		return keys[i].rt < keys[j].rt
	})
	uf := unionfind.New(len(keys))
	for i := 0; i < len(keys); i++ {
		for j := i + 1; j < len(keys); j++ {
			a, b := keys[i], keys[j]
			if a.lt != b.lt || a.rt != b.rt {
				continue
			}
			if headerSimilar(a.l, b.l) && headerSimilar(a.r, b.r) {
				uf.Union(i, j)
			}
		}
	}
	groupsIdx := uf.Groups()
	reps := make([]int, 0, len(groupsIdx))
	for r := range groupsIdx {
		reps = append(reps, r)
	}
	sort.Ints(reps)
	var out [][]int
	for _, r := range reps {
		var members []int
		for _, ki := range groupsIdx[r] {
			members = append(members, bucketOf[keys[ki]]...)
		}
		sort.Ints(members)
		out = append(out, members)
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out
}

// headerSimilar reports linguistic similarity of two normalized headers:
// identical, one contained in the other, or within edit distance 1.
func headerSimilar(a, b string) bool {
	if a == b {
		return true
	}
	if a != "" && b != "" && (contains(a, b) || contains(b, a)) {
		return true
	}
	return strmatch.WithinDistance(a, b, 1)
}

func contains(s, sub string) bool {
	return len(sub) >= 3 && len(s) > len(sub) && indexOf(s, sub) >= 0
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

// typeOfColumn classifies a candidate's left or right values.
func typeOfColumn(b *table.BinaryTable, left bool) valueType {
	numeric, code, text := 0, 0, 0
	for i, p := range b.Pairs {
		if i >= 20 {
			break
		}
		v := p.R
		if left {
			v = p.L
		}
		switch classifyValue(v) {
		case typeNumeric:
			numeric++
		case typeCode:
			code++
		default:
			text++
		}
	}
	switch {
	case numeric >= code && numeric >= text:
		return typeNumeric
	case code >= text:
		return typeCode
	default:
		return typeText
	}
}

func classifyValue(v string) valueType {
	digits, letters, spaces, runes := 0, 0, 0, 0
	for _, r := range v {
		runes++
		switch {
		case unicode.IsDigit(r):
			digits++
		case unicode.IsLetter(r):
			letters++
		case unicode.IsSpace(r):
			spaces++
		}
	}
	if runes == 0 {
		return typeText
	}
	if digits*2 > runes {
		return typeNumeric
	}
	if runes <= 4 && letters > 0 && spaces == 0 {
		return typeCode
	}
	return typeText
}

// UnionGroups converts candidate-index groups into unioned pair lists,
// shared by SchemaCC, Correlation and WiseIntegrator evaluation.
func UnionGroups(bins []*table.BinaryTable, groups [][]int) [][]table.Pair {
	out := make([][]table.Pair, 0, len(groups))
	for _, grp := range groups {
		seen := make(map[table.Pair]struct{})
		var pairs []table.Pair
		for _, i := range grp {
			for _, p := range bins[i].Pairs {
				if _, dup := seen[p]; dup {
					continue
				}
				seen[p] = struct{}{}
				pairs = append(pairs, p)
			}
		}
		out = append(out, pairs)
	}
	return out
}
