// Package baselines implements the comparison methods of Section 5.1:
// UnionDomain / UnionWeb (Ling & Halevy [30]), SchemaCC / SchemaPosCC
// (pair-wise schema matching aggregated by connected components),
// Correlation (parallel-pivot correlation clustering [12]), WiseIntegrator
// [22, 23], and the raw single-table pickers behind WikiTable / WebTable /
// EntTable. All baselines consume the same candidate binary tables as
// Synthesis so that differences measure the grouping strategy, not the
// extraction.
package baselines

import (
	"sort"
	"strings"

	"mapsynth/internal/table"
	"mapsynth/internal/textnorm"
)

// unionKey builds the header-based grouping key of the Union* baselines.
func unionKey(b *table.BinaryTable, withDomain bool) string {
	l := textnorm.Normalize(b.LeftName)
	r := textnorm.Normalize(b.RightName)
	if withDomain {
		return b.Domain + "\x1f" + l + "\x1f" + r
	}
	return l + "\x1f" + r
}

// unionBy groups candidates by key and unions their pairs per group.
// Groups are returned in ascending key order; pairs are deduplicated on
// exact surface form.
func unionBy(bins []*table.BinaryTable, withDomain bool) [][]table.Pair {
	groups := make(map[string][]table.Pair)
	seen := make(map[string]map[table.Pair]struct{})
	for _, b := range bins {
		k := unionKey(b, withDomain)
		if seen[k] == nil {
			seen[k] = make(map[table.Pair]struct{})
		}
		for _, p := range b.Pairs {
			if _, dup := seen[k][p]; dup {
				continue
			}
			seen[k][p] = struct{}{}
			groups[k] = append(groups[k], p)
		}
	}
	keys := make([]string, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([][]table.Pair, 0, len(keys))
	for _, k := range keys {
		out = append(out, groups[k])
	}
	return out
}

// UnionDomain implements Ling & Halevy's same-domain table stitching [30]
// adapted to mapping synthesis: candidates are unioned when they come from
// the same web domain and share identical (normalized) column headers.
func UnionDomain(bins []*table.BinaryTable) [][]table.Pair {
	return unionBy(bins, true)
}

// UnionWeb extends UnionDomain across the whole web: candidates are unioned
// whenever their (normalized) column headers match, regardless of domain.
// With undescriptive headers ("name", "code") this over-groups aggressively,
// which is the failure mode the paper demonstrates.
func UnionWeb(bins []*table.BinaryTable) [][]table.Pair {
	return unionBy(bins, false)
}

// SingleTables returns each candidate's pairs as its own relation,
// optionally restricted to one provenance domain — the WikiTable (domain =
// Wikipedia), WebTable and EntTable baselines, which upper-bound what
// picking the single best raw table can achieve.
func SingleTables(bins []*table.BinaryTable, domain string) [][]table.Pair {
	var out [][]table.Pair
	for _, b := range bins {
		if domain != "" && !strings.EqualFold(b.Domain, domain) {
			continue
		}
		out = append(out, b.Pairs)
	}
	return out
}
