package baselines

import (
	"math/rand"
	"sort"
	"strconv"

	"mapsynth/internal/graph"
	"mapsynth/internal/mapreduce"
)

// correlationEpsilon is the activation growth rate of the parallel-pivot
// algorithm; round i activates the first (1+ε)^i vertices of a random
// permutation. Smaller ε is closer to sequential pivoting (better quality,
// more rounds); the KDD-2014 paper uses a small constant.
const correlationEpsilon = 0.1

// Correlation implements parallel-pivot correlation clustering
// (Chierichetti, Dalvi & Kumar, KDD 2014 [12]) over the mapreduce engine,
// exactly as the paper's Correlation baseline. Edges are signed by the
// combined weight w+ + w-: positive edges attract, the rest repel.
//
// The algorithm draws one random permutation as priorities and activates
// vertices in geometrically growing batches; in each Map-Reduce round, an
// active unclustered vertex with no lower-priority active unclustered
// positive neighbor becomes a pivot, and unclustered positive neighbors join
// their lowest-priority adjacent pivot. The paper highlights two weaknesses
// this implementation reproduces: pivots only look at one-hop neighborhoods
// (chains of small tables fragment), and convergence takes
// O(log |V| · Δ+) rounds — which is why Correlation is the slowest method in
// Figure 8.
func Correlation(g *graph.Graph, seed int64, maxRounds int) [][]int {
	n := g.NumVertices()
	adj := make([][]int, n)
	for _, e := range g.Edges() {
		if e.Pos+e.Neg > 0 {
			adj[e.A] = append(adj[e.A], e.B)
			adj[e.B] = append(adj[e.B], e.A)
		}
	}
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(n) // perm[i] = vertex with priority rank i
	rank := make([]int, n)
	for i, v := range perm {
		rank[v] = i
	}
	cluster := make([]int, n)
	for i := range cluster {
		cluster[i] = -1
	}
	if maxRounds <= 0 {
		maxRounds = 4 * n
	}
	cfg := mapreduce.Config{}
	activeSize := 1.0
	for round := 0; round < maxRounds; round++ {
		if activeSize < float64(n) {
			activeSize *= 1 + correlationEpsilon
			if activeSize > float64(n) {
				activeSize = float64(n)
			}
		}
		limit := int(activeSize)
		active := func(v int) bool { return rank[v] < limit && cluster[v] == -1 }

		var inputs []interface{}
		for _, v := range perm[:limit] {
			if cluster[v] == -1 {
				inputs = append(inputs, v)
			}
		}
		if len(inputs) == 0 {
			if limit >= n {
				break
			}
			continue
		}
		// Map: every active unclustered vertex publishes its rank to its
		// active unclustered positive neighbors (and itself).
		m := func(in interface{}, emit func(string, interface{})) {
			v := in.(int)
			emit(strconv.Itoa(v), [2]int{v, rank[v]})
			for _, u := range adj[v] {
				if active(u) {
					emit(strconv.Itoa(u), [2]int{v, rank[v]})
				}
			}
		}
		// Reduce: v finds the minimum-rank vertex among itself and its
		// active neighbors; if that is v itself, v pivots, otherwise v
		// proposes to join that vertex.
		r := func(key string, values []interface{}, emit func(interface{})) {
			v, _ := strconv.Atoi(key)
			bestV, bestR := -1, n+1
			for _, val := range values {
				pr := val.([2]int)
				if pr[1] < bestR {
					bestV, bestR = pr[0], pr[1]
				}
			}
			if bestV == v {
				emit([2]int{v, v})
			} else if bestV >= 0 {
				emit([2]int{v, bestV})
			}
		}
		outs := mapreduce.Run(inputs, m, r, cfg)
		pivots := make(map[int]bool)
		for _, o := range outs {
			pr := o.([2]int)
			if pr[0] == pr[1] {
				pivots[pr[0]] = true
			}
		}
		for _, o := range outs {
			pr := o.([2]int)
			v, target := pr[0], pr[1]
			if cluster[v] == -1 && pivots[target] {
				cluster[v] = target
			}
		}
		if limit >= n {
			done := true
			for v := 0; v < n; v++ {
				if cluster[v] == -1 {
					done = false
					break
				}
			}
			if done {
				break
			}
		}
	}
	groups := make(map[int][]int)
	for v := 0; v < n; v++ {
		c := cluster[v]
		if c == -1 {
			c = v
		}
		groups[c] = append(groups[c], v)
	}
	out := make([][]int, 0, len(groups))
	for _, members := range groups {
		sort.Ints(members)
		out = append(out, members)
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out
}
