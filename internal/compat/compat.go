// Package compat computes pairwise table compatibility (Section 4.1):
// positive compatibility w+ as the symmetric maximum of containment over
// shared value pairs (Equation 3, with approximate string matching), and
// negative incompatibility w- from FD-violating conflicts (Equation 4).
//
// Because all-pairs computation is quadratic, candidate pairs are blocked
// with inverted indexes exactly like the paper's Map-Reduce regrouping:
// w+ is evaluated only for candidate pairs sharing at least ThetaOverlap
// value pairs, and w- only for pairs sharing at least ThetaOverlap
// left-hand-side values.
package compat

import (
	"context"
	"sort"

	"mapsynth/internal/pool"
	"mapsynth/internal/strmatch"
	"mapsynth/internal/table"
	"mapsynth/internal/textnorm"
)

// Options configures compatibility computation.
type Options struct {
	// ThetaOverlap is the minimum number of shared normalized value pairs
	// (for w+) or shared left values (for w-) before a candidate pair is
	// evaluated at all. Paper: a small constant (we default to 2).
	ThetaOverlap int
	// ThetaEdge drops positive edges weaker than this threshold from the
	// graph (Section 5.4 reports θedge = 0.85 works best at web scale; the
	// right value depends on corpus density).
	ThetaEdge float64
	// FracEd and KEd parameterize approximate string matching.
	FracEd float64
	KEd    int
	// MaxApproxProduct bounds the residual×residual approximate-matching
	// work per candidate pair; beyond it only exact matches count.
	MaxApproxProduct int
	// Synonyms, when non-nil, lets known synonyms match and prevents
	// synonym pairs from counting as conflicts.
	Synonyms *strmatch.SynonymFeed
}

// DefaultOptions returns sensible defaults for laptop-scale corpora. The
// paper's θedge = 0.85 presumes web-scale table redundancy; small corpora
// connect relation fragments through weaker chains, so the default here is
// lower (the sensitivity experiment sweeps it).
func DefaultOptions() Options {
	return Options{
		ThetaOverlap:     2,
		ThetaEdge:        0.2,
		FracEd:           strmatch.DefaultFracEd,
		KEd:              strmatch.DefaultKEd,
		MaxApproxProduct: 4096,
	}
}

// Candidate is the precomputed, normalized view of one BinaryTable used by
// all pairwise computations.
type Candidate struct {
	// ID is the dense candidate index (== position in the slice returned
	// by Precompute).
	ID int
	// Bin is the underlying binary table.
	Bin *table.BinaryTable
	// PairKeys holds the distinct normalized pair keys, sorted.
	PairKeys []string
	// Lefts maps each distinct normalized left value to its distinct
	// normalized right values (usually one; approximate FDs allow a few).
	Lefts map[string][]string
	// LeftKeys holds the distinct normalized left values, sorted.
	LeftKeys []string
}

// Size returns the number of distinct normalized pairs.
func (c *Candidate) Size() int { return len(c.PairKeys) }

// Precompute normalizes every candidate once. The i-th output corresponds
// to the i-th input and gets ID i.
func Precompute(bins []*table.BinaryTable) []*Candidate {
	out := make([]*Candidate, len(bins))
	for i, b := range bins {
		out[i] = PrecomputeOne(i, b)
	}
	return out
}

// PrecomputeParallel is Precompute fanned out over the worker pool; each
// candidate normalizes independently, so output is identical to Precompute
// for any worker count. Cancellation returns ctx's error and a nil slice.
func PrecomputeParallel(ctx context.Context, bins []*table.BinaryTable, p *pool.Pool) ([]*Candidate, error) {
	out := make([]*Candidate, len(bins))
	if err := p.ForEach(ctx, len(bins), func(i int) {
		out[i] = PrecomputeOne(i, bins[i])
	}); err != nil {
		return nil, err
	}
	return out, nil
}

// PrecomputeOne builds the normalized view of a single candidate with the
// given dense ID.
func PrecomputeOne(id int, b *table.BinaryTable) *Candidate {
	c := &Candidate{ID: id, Bin: b, Lefts: make(map[string][]string)}
	keySet := make(map[string]struct{}, len(b.Pairs))
	for _, p := range b.Pairs {
		nl, nr, ok := textnorm.NormalizePair(p.L, p.R)
		if !ok {
			continue
		}
		k := textnorm.PairKey(nl, nr)
		if _, dup := keySet[k]; dup {
			continue
		}
		keySet[k] = struct{}{}
		c.Lefts[nl] = appendUnique(c.Lefts[nl], nr)
	}
	c.PairKeys = make([]string, 0, len(keySet))
	for k := range keySet {
		c.PairKeys = append(c.PairKeys, k)
	}
	sort.Strings(c.PairKeys)
	c.LeftKeys = make([]string, 0, len(c.Lefts))
	for l := range c.Lefts {
		c.LeftKeys = append(c.LeftKeys, l)
	}
	sort.Strings(c.LeftKeys)
	return c
}

func appendUnique(s []string, v string) []string {
	for _, x := range s {
		if x == v {
			return s
		}
	}
	return append(s, v)
}

// Weights carries the two edge weights between a candidate pair.
type Weights struct {
	Pos float64 // w+ in [0, 1]
	Neg float64 // w- in [-1, 0]
}

// Computer evaluates w+ and w- between candidate pairs.
type Computer struct {
	opt     Options
	matcher *strmatch.Matcher
}

// NewComputer returns a Computer with the given options.
func NewComputer(opt Options) *Computer {
	m := strmatch.NewMatcher(opt.FracEd, opt.KEd)
	if opt.Synonyms != nil {
		m.SetSynonyms(opt.Synonyms)
	}
	return &Computer{opt: opt, matcher: m}
}

// Positive computes w+(B, B') (Equation 3): shared value pairs are counted
// by exact normalized-key intersection first; residual (unmatched) pairs are
// then matched approximately (both sides must match within the edit-distance
// threshold), greedily and at most once each.
func (cp *Computer) Positive(a, b *Candidate) float64 {
	if len(a.PairKeys) == 0 || len(b.PairKeys) == 0 {
		return 0
	}
	inter, resA, resB := intersectSorted(a.PairKeys, b.PairKeys)
	matched := inter
	if len(resA) > 0 && len(resB) > 0 && len(resA)*len(resB) <= cp.opt.MaxApproxProduct {
		matched += cp.approxResidual(resA, resB)
	}
	denom := len(a.PairKeys)
	if len(b.PairKeys) < denom {
		denom = len(b.PairKeys)
	}
	return float64(matched) / float64(denom)
}

// approxResidual greedily matches residual pair keys across the two tables
// using approximate matching on both the left and right halves. Each
// residual pair participates in at most one match.
func (cp *Computer) approxResidual(resA, resB []string) int {
	used := make([]bool, len(resB))
	count := 0
	for _, ka := range resA {
		la, ra := textnorm.SplitPairKey(ka)
		for j, kb := range resB {
			if used[j] {
				continue
			}
			lb, rb := textnorm.SplitPairKey(kb)
			if cp.matcher.MatchNormalized(la, lb) && cp.matcher.MatchNormalized(ra, rb) {
				used[j] = true
				count++
				break
			}
		}
	}
	return count
}

// Negative computes w-(B, B') (Equation 4). The conflict set F(B, B') holds
// the left values present in both candidates whose right values disagree:
// some right value of one table fails to match (approximately or as a
// synonym) some right value of the other. The score is
// -max{|F|/|B|, |F|/|B'|}, always <= 0.
func (cp *Computer) Negative(a, b *Candidate) float64 {
	if len(a.Lefts) == 0 || len(b.Lefts) == 0 {
		return 0
	}
	small, large := a, b
	if len(small.Lefts) > len(large.Lefts) {
		small, large = large, small
	}
	conflicts := 0
	for l, rsA := range small.Lefts {
		rsB, ok := large.Lefts[l]
		if !ok {
			continue
		}
		if cp.rightsConflict(rsA, rsB) {
			conflicts++
		}
	}
	if conflicts == 0 {
		return 0
	}
	denom := len(a.PairKeys)
	if len(b.PairKeys) < denom {
		denom = len(b.PairKeys)
	}
	return -float64(conflicts) / float64(denom)
}

// rightsConflict reports whether two right-value sets disagree: true when
// any value on one side has no approximate/synonym match on the other.
func (cp *Computer) rightsConflict(rsA, rsB []string) bool {
	for _, ra := range rsA {
		found := false
		for _, rb := range rsB {
			if cp.matcher.MatchNormalized(ra, rb) {
				found = true
				break
			}
		}
		if !found {
			return true
		}
	}
	for _, rb := range rsB {
		found := false
		for _, ra := range rsA {
			if cp.matcher.MatchNormalized(ra, rb) {
				found = true
				break
			}
		}
		if !found {
			return true
		}
	}
	return false
}

// ConflictLeftValues returns the conflict set F(B, B') as the sorted list of
// normalized left values with disagreeing right values. Used by conflict
// resolution and tests.
func (cp *Computer) ConflictLeftValues(a, b *Candidate) []string {
	var out []string
	for l, rsA := range a.Lefts {
		rsB, ok := b.Lefts[l]
		if !ok {
			continue
		}
		if cp.rightsConflict(rsA, rsB) {
			out = append(out, l)
		}
	}
	sort.Strings(out)
	return out
}

// intersectSorted intersects two sorted string slices, returning the
// intersection size and the residuals (elements unique to each side).
func intersectSorted(a, b []string) (inter int, resA, resB []string) {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			inter++
			i++
			j++
		case a[i] < b[j]:
			resA = append(resA, a[i])
			i++
		default:
			resB = append(resB, b[j])
			j++
		}
	}
	resA = append(resA, a[i:]...)
	resB = append(resB, b[j:]...)
	return inter, resA, resB
}
