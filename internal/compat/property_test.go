package compat

import (
	"fmt"
	"math/rand"
	"testing"

	"mapsynth/internal/strmatch"
	"mapsynth/internal/table"
)

type synFeed = strmatch.SynonymFeed

func newFeed() *synFeed { return strmatch.NewSynonymFeed() }

// randomCandidates builds candidate tables over a shared small vocabulary so
// overlaps and conflicts actually occur.
func randomCandidates(rng *rand.Rand, n int) []*Candidate {
	vocabL := make([]string, 12)
	vocabR := make([]string, 12)
	for i := range vocabL {
		vocabL[i] = fmt.Sprintf("left %c", 'a'+i)
		vocabR[i] = fmt.Sprintf("R%d", i)
	}
	bins := make([]*table.BinaryTable, n)
	for i := 0; i < n; i++ {
		k := 3 + rng.Intn(8)
		ls := make([]string, k)
		rs := make([]string, k)
		for j := 0; j < k; j++ {
			ls[j] = vocabL[rng.Intn(len(vocabL))]
			rs[j] = vocabR[rng.Intn(len(vocabR))]
		}
		bins[i] = table.NewBinaryTable(i, i, "d", "l", "r", ls, rs)
	}
	return Precompute(bins)
}

// TestWeightInvariants checks, over random candidate pairs, the structural
// properties the synthesis formulation relies on: w+ ∈ [0, 1], w- ∈ [-1, 0],
// symmetry, identity (w+(B, B) = 1), and that a pair with positive conflict
// count has strictly negative w-.
func TestWeightInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	cp := NewComputer(DefaultOptions())
	for trial := 0; trial < 30; trial++ {
		cands := randomCandidates(rng, 8)
		for i := range cands {
			if cands[i].Size() == 0 {
				continue
			}
			if got := cp.Positive(cands[i], cands[i]); got != 1 {
				t.Fatalf("w+(B,B) = %v, want 1", got)
			}
			for j := i + 1; j < len(cands); j++ {
				a, b := cands[i], cands[j]
				pos := cp.Positive(a, b)
				if pos < 0 || pos > 1+1e-9 {
					t.Fatalf("w+ out of range: %v", pos)
				}
				if pos != cp.Positive(b, a) {
					t.Fatalf("w+ asymmetric")
				}
				neg := cp.Negative(a, b)
				if neg > 0 || neg < -1-1e-9 {
					t.Fatalf("w- out of range: %v", neg)
				}
				if neg != cp.Negative(b, a) {
					t.Fatalf("w- asymmetric")
				}
				conflicts := cp.ConflictLeftValues(a, b)
				if (len(conflicts) > 0) != (neg < 0) {
					t.Fatalf("conflict set size %d inconsistent with w- %v", len(conflicts), neg)
				}
			}
		}
	}
}

// TestBlockingSoundness: every pair that genuinely shares >= theta exact
// normalized value pairs must be produced by the blocker (no false
// negatives; false positives are impossible by construction).
func TestBlockingSoundness(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 20; trial++ {
		cands := randomCandidates(rng, 10)
		theta := 1 + rng.Intn(3)
		pos, _ := BlockedPairs(cands, theta)
		blocked := make(map[[2]int]bool, len(pos))
		for _, p := range pos {
			blocked[p] = true
		}
		for i := range cands {
			for j := i + 1; j < len(cands); j++ {
				inter, _, _ := intersectSorted(cands[i].PairKeys, cands[j].PairKeys)
				if inter >= theta && !blocked[[2]int{i, j}] {
					t.Fatalf("trial %d: pair (%d,%d) shares %d >= %d keys but was not blocked",
						trial, i, j, inter, theta)
				}
				if inter < theta && blocked[[2]int{i, j}] {
					t.Fatalf("trial %d: pair (%d,%d) shares %d < %d keys but was blocked",
						trial, i, j, inter, theta)
				}
			}
		}
	}
}

// TestSynonymsSuppressConflicts: a synonym feed must both lift w+ and
// remove conflicts caused by synonymous right values (Section 4.1,
// "Synonyms" and the conflict-set definition).
func TestSynonymsSuppressConflicts(t *testing.T) {
	a := table.NewBinaryTable(0, 0, "d", "l", "r",
		[]string{"k1", "k2", "k3", "k4"},
		[]string{"US Virgin Islands", "v2", "v3", "v4"})
	b := table.NewBinaryTable(1, 1, "d", "l", "r",
		[]string{"k1", "k2", "k3", "k4"},
		[]string{"Virgin Islands of the United States", "v2", "v3", "v4"})
	cands := Precompute([]*table.BinaryTable{a, b})

	plain := NewComputer(DefaultOptions())
	if got := plain.Negative(cands[0], cands[1]); got >= 0 {
		t.Fatalf("without synonyms, k1 should conflict: w- = %v", got)
	}

	opt := DefaultOptions()
	feed := newSynonymFeed(t)
	opt.Synonyms = feed
	withSyn := NewComputer(opt)
	if got := withSyn.Negative(cands[0], cands[1]); got != 0 {
		t.Errorf("with synonyms, conflict should vanish: w- = %v", got)
	}
	if got := withSyn.Positive(cands[0], cands[1]); got != 1 {
		t.Errorf("with synonyms, w+ should be 1: %v", got)
	}
}

func newSynonymFeed(t *testing.T) *synFeed {
	t.Helper()
	f := newFeed()
	f.AddGroup("us virgin islands", "virgin islands of the united states")
	return f
}
