package compat

import (
	"math"
	"testing"

	"mapsynth/internal/table"
)

// binFromPairs builds a BinaryTable from (l, r) pairs.
func binFromPairs(id int, pairs [][2]string) *table.BinaryTable {
	ls := make([]string, len(pairs))
	rs := make([]string, len(pairs))
	for i, p := range pairs {
		ls[i] = p[0]
		rs[i] = p[1]
	}
	return table.NewBinaryTable(id, id, "d", "l", "r", ls, rs)
}

// paperTables builds B1, B2, B3 from Table 8 of the paper.
func paperTables() []*Candidate {
	b1 := binFromPairs(0, [][2]string{
		{"Afghanistan", "AFG"}, {"Albania", "ALB"}, {"Algeria", "ALG"},
		{"American Samoa", "ASA"}, {"South Korea", "KOR"}, {"US Virgin Islands", "ISV"},
	})
	b2 := binFromPairs(1, [][2]string{
		{"Afghanistan", "AFG"}, {"Albania", "ALB"}, {"Algeria", "ALG"},
		{"American Samoa (US)", "ASA"}, {"Korea, Republic of (South)", "KOR"},
		{"United States Virgin Islands", "ISV"},
	})
	b3 := binFromPairs(2, [][2]string{
		{"Afghanistan", "AFG"}, {"Albania", "ALB"}, {"Algeria", "DZA"},
		{"American Samoa", "ASM"}, {"South Korea", "KOR"}, {"US Virgin Islands", "VIR"},
	})
	return Precompute([]*table.BinaryTable{b1, b2, b3})
}

func TestPositiveCompatibilityExample7(t *testing.T) {
	cands := paperTables()
	cp := NewComputer(DefaultOptions())
	// Example 7: exact matching gives w+(B1, B2) = 3/6 = 0.5.
	exactOpt := DefaultOptions()
	exactOpt.MaxApproxProduct = 0 // disable approximate residual matching
	exact := NewComputer(exactOpt)
	if got := exact.Positive(cands[0], cands[1]); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("exact w+(B1,B2) = %v, want 0.5", got)
	}
	// Example 8: approximate matching lifts it (the paper reaches 4/6; our
	// normalization-based matcher must find at least the same 3 plus keep
	// the score in [0.5, 1]).
	got := cp.Positive(cands[0], cands[1])
	if got < 0.5-1e-9 || got > 1 {
		t.Errorf("approx w+(B1,B2) = %v, want in [0.5, 1]", got)
	}
	// w+(B1, B3) = 3/6 (first, second, fifth rows agree).
	if got := exact.Positive(cands[0], cands[2]); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("w+(B1,B3) = %v, want 0.5", got)
	}
}

func TestNegativeIncompatibilityExample9(t *testing.T) {
	cands := paperTables()
	cp := NewComputer(DefaultOptions())
	// Example 9: B1 and B3 conflict on Algeria, American Samoa and USVI:
	// w- = -3/6 = -0.5.
	if got := cp.Negative(cands[0], cands[2]); math.Abs(got-(-0.5)) > 1e-9 {
		t.Errorf("w-(B1,B3) = %v, want -0.5", got)
	}
	// B1 and B2 describe the same IOC relationship: no conflicts.
	if got := cp.Negative(cands[0], cands[1]); got != 0 {
		t.Errorf("w-(B1,B2) = %v, want 0", got)
	}
	conf := cp.ConflictLeftValues(cands[0], cands[2])
	if len(conf) != 3 {
		t.Errorf("conflict set = %v, want 3 lefts", conf)
	}
}

func TestWeightsSymmetric(t *testing.T) {
	cands := paperTables()
	cp := NewComputer(DefaultOptions())
	for i := range cands {
		for j := range cands {
			if cp.Positive(cands[i], cands[j]) != cp.Positive(cands[j], cands[i]) {
				t.Errorf("w+ not symmetric for %d,%d", i, j)
			}
			if cp.Negative(cands[i], cands[j]) != cp.Negative(cands[j], cands[i]) {
				t.Errorf("w- not symmetric for %d,%d", i, j)
			}
		}
	}
}

func TestContainmentFavorsSubset(t *testing.T) {
	// A small table fully contained in a big one scores w+ = 1 even though
	// Jaccard would be low — the max-of-containment rationale (Section 4.1).
	big := make([][2]string, 40)
	for i := range big {
		big[i] = [2]string{"left" + string(rune('a'+i%26)) + string(rune('0'+i/26)), "right" + string(rune('a'+i))}
	}
	small := big[:5]
	cands := Precompute([]*table.BinaryTable{binFromPairs(0, big), binFromPairs(1, small)})
	cp := NewComputer(DefaultOptions())
	if got := cp.Positive(cands[0], cands[1]); math.Abs(got-1) > 1e-9 {
		t.Errorf("containment w+ = %v, want 1", got)
	}
}

func TestBlockedPairs(t *testing.T) {
	cands := paperTables()
	pos, neg := BlockedPairs(cands, 2)
	// All three tables share >= 2 pairs (Afghanistan, Albania rows).
	if len(pos) != 3 {
		t.Errorf("pos pairs = %v, want all 3 combinations", pos)
	}
	// All three share >= 2 left values.
	if len(neg) != 3 {
		t.Errorf("neg pairs = %v", neg)
	}
	// Raising the overlap threshold prunes pairs.
	pos5, _ := BlockedPairs(cands, 5)
	if len(pos5) != 0 {
		t.Errorf("pos pairs at theta=5 = %v, want none", pos5)
	}
}

func TestBuildGraphShape(t *testing.T) {
	cands := paperTables()
	opt := DefaultOptions()
	g := BuildGraph(cands, opt, 2)
	// B1-B2: strong positive, no negative. B1-B3 and B2-B3: positive 0.5
	// with negative -0.5.
	e12 := g.GetEdge(0, 1)
	if e12 == nil || e12.Pos < 0.5 || e12.Neg != 0 {
		t.Errorf("edge B1-B2 = %+v", e12)
	}
	e13 := g.GetEdge(0, 2)
	if e13 == nil || e13.Neg >= 0 {
		t.Errorf("edge B1-B3 = %+v", e13)
	}
}

func TestPrecomputeNormalizesAndDedups(t *testing.T) {
	b := binFromPairs(0, [][2]string{
		{"Japan", "JPN"}, {"JAPAN", "jpn"}, {"Japan[1]", "JPN"},
	})
	cands := Precompute([]*table.BinaryTable{b})
	if cands[0].Size() != 1 {
		t.Errorf("normalized size = %d, want 1", cands[0].Size())
	}
	if len(cands[0].Lefts["japan"]) != 1 {
		t.Errorf("Lefts = %v", cands[0].Lefts)
	}
}

func TestPackUnpackPair(t *testing.T) {
	a, b := unpackPair(packPair(123456, 7))
	if a != 7 || b != 123456 {
		t.Errorf("pack/unpack = %d,%d", a, b)
	}
}
