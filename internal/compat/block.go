package compat

import (
	"context"
	"sort"

	"mapsynth/internal/graph"
	"mapsynth/internal/pool"
)

// MaxPostingLen caps the inverted-index posting lists considered during
// blocking. Keys appearing in more candidates than this behave like
// stop-words and would produce a quadratic pair blow-up; they are skipped.
// (Pairs of truly related tables always share several less common keys.)
const MaxPostingLen = 800

// pairCount accumulates, per candidate pair, how many blocking keys they
// share. Keys are packed (a<<32 | b) with a < b.
type pairCount map[uint64]int32

func packPair(a, b int) uint64 {
	if a > b {
		a, b = b, a
	}
	return uint64(a)<<32 | uint64(uint32(b))
}

func unpackPair(k uint64) (int, int) {
	return int(k >> 32), int(uint32(k))
}

// BlockedPairs runs inverted-index blocking (the paper's Map-Reduce
// regrouping) and returns the candidate pairs that share at least
// thetaOverlap normalized value pairs (posPairs) and at least thetaOverlap
// normalized left values (negPairs). Both lists are sorted for determinism.
func BlockedPairs(cands []*Candidate, thetaOverlap int) (posPairs, negPairs [][2]int) {
	if thetaOverlap < 1 {
		thetaOverlap = 1
	}
	posPairs = blockBy(cands, thetaOverlap, func(c *Candidate) []string { return c.PairKeys })
	negPairs = blockBy(cands, thetaOverlap, func(c *Candidate) []string { return c.LeftKeys })
	return posPairs, negPairs
}

// blockBy builds an inverted index over the given key extractor and counts
// shared keys per candidate pair.
func blockBy(cands []*Candidate, thetaOverlap int, keys func(*Candidate) []string) [][2]int {
	inv := make(map[string][]int32)
	for _, c := range cands {
		for _, k := range keys(c) {
			inv[k] = append(inv[k], int32(c.ID))
		}
	}
	counts := make(pairCount)
	for _, ids := range inv {
		if len(ids) < 2 || len(ids) > MaxPostingLen {
			continue
		}
		for i := 0; i < len(ids); i++ {
			for j := i + 1; j < len(ids); j++ {
				counts[packPair(int(ids[i]), int(ids[j]))]++
			}
		}
	}
	out := make([][2]int, 0, len(counts))
	for k, c := range counts {
		if int(c) >= thetaOverlap {
			a, b := unpackPair(k)
			out = append(out, [2]int{a, b})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// BuildGraph computes the full compatibility graph for a candidate set:
// blocking, then parallel evaluation of w+ over pos-blocked pairs and w-
// over neg-blocked pairs. Positive weights below opt.ThetaEdge are dropped
// (treated as 0); negative weights of 0 produce no negative component.
// Edges that end up with both weights zero are omitted.
func BuildGraph(cands []*Candidate, opt Options, workers int) *graph.Graph {
	g, _ := BuildGraphCtx(context.Background(), cands, opt, pool.New(workers))
	return g
}

// BuildGraphCtx is BuildGraph running on a caller-supplied worker pool with
// cancellation: when ctx is cancelled mid-build it stops scoring promptly
// and returns ctx's error with a nil graph.
func BuildGraphCtx(ctx context.Context, cands []*Candidate, opt Options, p *pool.Pool) (*graph.Graph, error) {
	cp := NewComputer(opt)
	posPairs, negPairs := BlockedPairs(cands, opt.ThetaOverlap)

	type job struct {
		a, b int
		neg  bool
	}
	jobs := make([]job, 0, len(posPairs)+len(negPairs))
	for _, p := range posPairs {
		jobs = append(jobs, job{a: p[0], b: p[1]})
	}
	for _, p := range negPairs {
		jobs = append(jobs, job{a: p[0], b: p[1], neg: true})
	}

	type res struct {
		a, b int
		pos  float64
		neg  float64
	}
	results := make([]res, len(jobs))
	if err := p.ForEach(ctx, len(jobs), func(i int) {
		j := jobs[i]
		r := res{a: j.a, b: j.b}
		if j.neg {
			r.neg = cp.Negative(cands[j.a], cands[j.b])
		} else {
			pw := cp.Positive(cands[j.a], cands[j.b])
			if pw >= opt.ThetaEdge {
				r.pos = pw
			}
		}
		results[i] = r
	}); err != nil {
		return nil, err
	}

	// Merge the two passes per pair: a pair may appear in both lists.
	type acc struct{ pos, neg float64 }
	merged := make(map[uint64]*acc, len(results))
	for _, r := range results {
		if r.pos == 0 && r.neg == 0 {
			continue
		}
		k := packPair(r.a, r.b)
		a, ok := merged[k]
		if !ok {
			a = &acc{}
			merged[k] = a
		}
		if r.pos != 0 {
			a.pos = r.pos
		}
		if r.neg != 0 {
			a.neg = r.neg
		}
	}
	g := graph.New(len(cands))
	for k, a := range merged {
		x, y := unpackPair(k)
		g.AddEdge(x, y, a.pos, a.neg)
	}
	return g, nil
}
