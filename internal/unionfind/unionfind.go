// Package unionfind implements a disjoint-set forest with union by rank and
// path compression (Hopcroft & Ullman [25]), used to track merged partitions
// during greedy table synthesis and to compute connected components.
package unionfind

// UF is a disjoint-set forest over the integers [0, n).
// The zero value is not usable; construct with New.
type UF struct {
	parent []int
	rank   []byte
	count  int
}

// New returns a disjoint-set forest with n singleton sets {0}, {1}, ... {n-1}.
func New(n int) *UF {
	uf := &UF{
		parent: make([]int, n),
		rank:   make([]byte, n),
		count:  n,
	}
	for i := range uf.parent {
		uf.parent[i] = i
	}
	return uf
}

// Find returns the canonical representative of x's set, compressing paths as
// it walks.
func (u *UF) Find(x int) int {
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]] // halve the path
		x = u.parent[x]
	}
	return x
}

// Union merges the sets containing x and y and reports whether a merge
// happened (false if they were already in the same set).
func (u *UF) Union(x, y int) bool {
	rx, ry := u.Find(x), u.Find(y)
	if rx == ry {
		return false
	}
	if u.rank[rx] < u.rank[ry] {
		rx, ry = ry, rx
	}
	u.parent[ry] = rx
	if u.rank[rx] == u.rank[ry] {
		u.rank[rx]++
	}
	u.count--
	return true
}

// Connected reports whether x and y are in the same set.
func (u *UF) Connected(x, y int) bool { return u.Find(x) == u.Find(y) }

// Count returns the current number of disjoint sets.
func (u *UF) Count() int { return u.count }

// Len returns the number of elements in the forest.
func (u *UF) Len() int { return len(u.parent) }

// Groups materializes the current sets as a map from representative to
// members. Member order within a group is ascending.
func (u *UF) Groups() map[int][]int {
	g := make(map[int][]int)
	for i := range u.parent {
		r := u.Find(i)
		g[r] = append(g[r], i)
	}
	return g
}
