package unionfind

import (
	"math/rand"
	"testing"
)

func TestBasicUnionFind(t *testing.T) {
	uf := New(5)
	if uf.Count() != 5 || uf.Len() != 5 {
		t.Fatalf("initial state wrong: count=%d len=%d", uf.Count(), uf.Len())
	}
	if !uf.Union(0, 1) {
		t.Error("first union should merge")
	}
	if uf.Union(1, 0) {
		t.Error("repeat union should be a no-op")
	}
	if !uf.Connected(0, 1) {
		t.Error("0 and 1 should be connected")
	}
	if uf.Connected(0, 2) {
		t.Error("0 and 2 should not be connected")
	}
	uf.Union(2, 3)
	uf.Union(1, 3)
	if uf.Count() != 2 {
		t.Errorf("count = %d, want 2", uf.Count())
	}
	groups := uf.Groups()
	sizes := map[int]bool{}
	for _, g := range groups {
		sizes[len(g)] = true
	}
	if !sizes[4] || !sizes[1] {
		t.Errorf("groups sizes wrong: %v", groups)
	}
}

func TestGroupsSortedMembers(t *testing.T) {
	uf := New(6)
	uf.Union(5, 0)
	uf.Union(3, 5)
	for _, g := range uf.Groups() {
		for i := 1; i < len(g); i++ {
			if g[i] <= g[i-1] {
				t.Fatalf("group not ascending: %v", g)
			}
		}
	}
}

// TestAgainstNaive cross-checks union-find against a naive labeling under a
// random operation sequence.
func TestAgainstNaive(t *testing.T) {
	const n = 80
	rng := rand.New(rand.NewSource(3))
	uf := New(n)
	label := make([]int, n)
	for i := range label {
		label[i] = i
	}
	relabel := func(from, to int) {
		for i := range label {
			if label[i] == from {
				label[i] = to
			}
		}
	}
	for op := 0; op < 2000; op++ {
		a, b := rng.Intn(n), rng.Intn(n)
		if rng.Intn(2) == 0 {
			merged := uf.Union(a, b)
			if merged == (label[a] == label[b]) {
				t.Fatalf("op %d: union(%d,%d) merged=%v but labels %d,%d", op, a, b, merged, label[a], label[b])
			}
			if merged {
				relabel(label[b], label[a])
			}
		} else {
			if uf.Connected(a, b) != (label[a] == label[b]) {
				t.Fatalf("op %d: connected(%d,%d) mismatch", op, a, b)
			}
		}
	}
	// Count must match distinct labels.
	distinct := map[int]struct{}{}
	for _, l := range label {
		distinct[l] = struct{}{}
	}
	if uf.Count() != len(distinct) {
		t.Errorf("count = %d, want %d", uf.Count(), len(distinct))
	}
}
