package expansion

import (
	"testing"

	"mapsynth/internal/mapping"
	"mapsynth/internal/table"
)

func coreMapping(pairs [][2]string) *mapping.Mapping {
	ls := make([]string, len(pairs))
	rs := make([]string, len(pairs))
	for i, p := range pairs {
		ls[i] = p[0]
		rs[i] = p[1]
	}
	b := table.NewBinaryTable(0, 0, "d", "l", "r", ls, rs)
	return mapping.Build(0, []*table.BinaryTable{b})
}

func source(name string, pairs [][2]string) *TrustedSource {
	s := &TrustedSource{Name: name}
	for _, p := range pairs {
		s.Pairs = append(s.Pairs, table.Pair{L: p[0], R: p[1]})
	}
	return s
}

func TestExpandGrowsConsistentCore(t *testing.T) {
	core := coreMapping([][2]string{
		{"LAX Airport", "LAX"}, {"SFO Airport", "SFO"}, {"JFK Airport", "JFK"},
	})
	feed := source("data.gov", [][2]string{
		{"LAX Airport", "LAX"}, {"SFO Airport", "SFO"},
		{"ORD Airport", "ORD"}, {"ATL Airport", "ATL"},
	})
	out, res := Expand(core, []*TrustedSource{feed}, DefaultOptions())
	if len(res.SourcesMerged) != 1 {
		t.Fatalf("merged = %v", res.SourcesMerged)
	}
	if res.PairsAdded != 2 {
		t.Errorf("added = %d, want 2", res.PairsAdded)
	}
	if len(out) != 5 {
		t.Errorf("expanded size = %d, want 5", len(out))
	}
}

func TestExpandRejectsConflictingSource(t *testing.T) {
	core := coreMapping([][2]string{
		{"a", "1"}, {"b", "2"}, {"c", "3"}, {"d", "4"},
	})
	bad := source("untrusted", [][2]string{
		{"a", "1"}, {"b", "999"}, {"c", "888"}, // 2 of 4 lefts conflict
		{"e", "5"},
	})
	out, res := Expand(core, []*TrustedSource{bad}, DefaultOptions())
	if len(res.SourcesMerged) != 0 {
		t.Fatalf("conflicting source was merged: %v", res.SourcesMerged)
	}
	if len(out) != 4 {
		t.Errorf("core should be unchanged, got %d pairs", len(out))
	}
}

func TestExpandRejectsUnrelatedSource(t *testing.T) {
	core := coreMapping([][2]string{{"a", "1"}, {"b", "2"}, {"c", "3"}})
	unrelated := source("other", [][2]string{{"x", "9"}, {"y", "8"}})
	_, res := Expand(core, []*TrustedSource{unrelated}, DefaultOptions())
	if len(res.SourcesMerged) != 0 {
		t.Error("source with no containment must not merge")
	}
}

func TestExpandDoesNotDuplicate(t *testing.T) {
	core := coreMapping([][2]string{{"a", "1"}, {"b", "2"}, {"c", "3"}})
	feed := source("dup", [][2]string{{"a", "1"}, {"A", "1"}, {"b", "2"}})
	out, res := Expand(core, []*TrustedSource{feed}, DefaultOptions())
	if res.PairsAdded != 0 {
		t.Errorf("added = %d, want 0", res.PairsAdded)
	}
	if len(out) != 3 {
		t.Errorf("size = %d, want 3", len(out))
	}
}
