// Package expansion implements the optional table-expansion step
// (Appendix I of the paper): synthesized mappings form robust "cores" that
// can be grown with instances from trusted, more comprehensive external
// sources (data.gov-style feeds, curated spreadsheets), which helps very
// large relationships (e.g. 10K+ airports) whose tail has little presence
// in web tables.
package expansion

import (
	"sort"

	"mapsynth/internal/mapping"
	"mapsynth/internal/strmatch"
	"mapsynth/internal/table"
	"mapsynth/internal/textnorm"
)

// TrustedSource is one authoritative external relation.
type TrustedSource struct {
	// Name identifies the feed (e.g. "data.gov/airports").
	Name string
	// Pairs holds the feed's (left, right) instances.
	Pairs []table.Pair
}

// Options controls when a source is merged into a core.
type Options struct {
	// MinContainment is the minimum fraction of the core's pairs that the
	// source must agree with (approximately) for the merge to proceed.
	MinContainment float64
	// MaxConflictRatio is the maximum fraction of the core's left values
	// the source may conflict with.
	MaxConflictRatio float64
	// FracEd and KEd parameterize approximate matching.
	FracEd float64
	KEd    int
}

// DefaultOptions requires a third of the core corroborated and under 2%
// conflicts — expansion must never dilute a high-precision core.
func DefaultOptions() Options {
	return Options{
		MinContainment:   0.33,
		MaxConflictRatio: 0.02,
		FracEd:           strmatch.DefaultFracEd,
		KEd:              strmatch.DefaultKEd,
	}
}

// Result reports what Expand did for one mapping.
type Result struct {
	// SourcesMerged lists the names of trusted sources merged in.
	SourcesMerged []string
	// PairsAdded is the number of new pairs contributed by the sources.
	PairsAdded int
}

// Expand grows a synthesized mapping with every trusted source that is
// sufficiently similar (containment of the core's pairs) and sufficiently
// consistent (few conflicting left values). It returns the expanded pair
// list (the original pairs plus additions, sorted) and a Result; the input
// mapping is not modified.
func Expand(m *mapping.Mapping, sources []*TrustedSource, opt Options) ([]table.Pair, Result) {
	corePairs := make(map[string]table.Pair, len(m.Pairs))
	coreLefts := make(map[string]string) // normalized left -> normalized right
	for _, p := range m.Pairs {
		nl, nr, ok := textnorm.NormalizePair(p.L, p.R)
		if !ok {
			continue
		}
		corePairs[textnorm.PairKey(nl, nr)] = p
		coreLefts[nl] = nr
	}
	matcher := strmatch.NewMatcher(opt.FracEd, opt.KEd)
	var res Result
	out := append([]table.Pair(nil), m.Pairs...)
	for _, src := range sources {
		agree, conflicts, additions := compareSource(src, corePairs, coreLefts, matcher)
		if len(corePairs) == 0 {
			continue
		}
		containment := float64(agree) / float64(len(corePairs))
		conflictRatio := float64(conflicts) / float64(len(coreLefts))
		if containment < opt.MinContainment || conflictRatio > opt.MaxConflictRatio {
			continue
		}
		res.SourcesMerged = append(res.SourcesMerged, src.Name)
		for _, p := range additions {
			nl, nr, ok := textnorm.NormalizePair(p.L, p.R)
			if !ok {
				continue
			}
			k := textnorm.PairKey(nl, nr)
			if _, dup := corePairs[k]; dup {
				continue
			}
			corePairs[k] = p
			if _, known := coreLefts[nl]; !known {
				coreLefts[nl] = nr
			}
			out = append(out, p)
			res.PairsAdded++
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].L != out[j].L {
			return out[i].L < out[j].L
		}
		return out[i].R < out[j].R
	})
	return out, res
}

// compareSource measures agreement between a source and the core: agree is
// the number of core pairs corroborated by the source (exact normalized
// match), conflicts is the number of core left values where the source
// disagrees on the right value (beyond approximate matching), and additions
// are the source pairs whose left value the core does not know.
func compareSource(src *TrustedSource, corePairs map[string]table.Pair, coreLefts map[string]string, matcher *strmatch.Matcher) (agree, conflicts int, additions []table.Pair) {
	seenAgree := make(map[string]struct{})
	conflictLefts := make(map[string]struct{})
	for _, p := range src.Pairs {
		nl, nr, ok := textnorm.NormalizePair(p.L, p.R)
		if !ok {
			continue
		}
		k := textnorm.PairKey(nl, nr)
		if _, hit := corePairs[k]; hit {
			seenAgree[k] = struct{}{}
			continue
		}
		coreR, known := coreLefts[nl]
		if !known {
			additions = append(additions, p)
			continue
		}
		if !matcher.MatchNormalized(coreR, nr) {
			conflictLefts[nl] = struct{}{}
		}
	}
	return len(seenAgree), len(conflictLefts), additions
}
