package index

import (
	"sort"

	"mapsynth/internal/mapping"
)

// Source is the storage backend of a MappingIndex: everything a containment
// query needs to pre-screen, verify and rank mappings, decoupled from where
// the data lives. Two implementations exist — the heap source built by
// Build from synthesis output or a decoded v1 snapshot, and the mmap source
// in internal/snapshot serving a v2 snapshot region zero-copy, where the
// Bloom bits, postings and value tables are read in place and Mapping(i)
// materializes lazily on first hit.
type Source interface {
	// Len returns the number of mappings.
	Len() int
	// Mapping returns the i-th mapping. Mmap-backed sources materialize it
	// on first access; it is only called for mappings that actually hit.
	Mapping(i int) *mapping.Mapping
	// MayContainLeft probes mapping i's left-column Bloom filter with a
	// precomputed hash (never false negatives).
	MayContainLeft(i int, h Hash) bool
	// MayContainRight probes mapping i's right-column Bloom filter.
	MayContainRight(i int, h Hash) bool
	// Postings returns the ascending positions of the mappings whose left
	// column contains the normalized value. The slice is read-only.
	Postings(nl string) []int32
	// InLeft reports exactly whether mapping i's left column contains the
	// normalized value.
	InLeft(i int, nl string) bool
	// InRight reports exactly whether mapping i's right column contains
	// the normalized value.
	InRight(i int, nl string) bool
}

// heapSource is the in-memory Source over fully materialized mappings: per
// mapping a Bloom filter pair and sorted normalized value tables, plus the
// exact inverted index over left values.
type heapSource struct {
	maps            []*mapping.Mapping
	leftBF, rightBF []*Bloom
	// sortedLeft/sortedRight hold each mapping's distinct normalized
	// values ascending, for exact membership by binary search.
	sortedLeft, sortedRight [][]string
	// inverted: normalized left value -> ascending mapping positions.
	inverted map[string][]int32
}

var _ Source = (*heapSource)(nil)

// newHeapSource indexes the mappings. The slice is retained; mappings must
// not be mutated afterwards.
func newHeapSource(maps []*mapping.Mapping) *heapSource {
	s := &heapSource{
		maps:        maps,
		leftBF:      make([]*Bloom, len(maps)),
		rightBF:     make([]*Bloom, len(maps)),
		sortedLeft:  make([][]string, len(maps)),
		sortedRight: make([][]string, len(maps)),
		inverted:    make(map[string][]int32),
	}
	for i, m := range maps {
		left, right := m.NormalizedValues()
		lb := NewBloom(len(m.Pairs), 0.01)
		rb := NewBloom(len(m.Pairs), 0.01)
		for _, nl := range left {
			lb.Add(nl)
			s.inverted[nl] = append(s.inverted[nl], int32(i))
		}
		for _, nr := range right {
			rb.Add(nr)
		}
		s.leftBF[i], s.rightBF[i] = lb, rb
		s.sortedLeft[i], s.sortedRight[i] = left, right
	}
	return s
}

func (s *heapSource) Len() int                          { return len(s.maps) }
func (s *heapSource) Mapping(i int) *mapping.Mapping    { return s.maps[i] }
func (s *heapSource) MayContainLeft(i int, h Hash) bool { return s.leftBF[i].MayContainHash(h) }
func (s *heapSource) MayContainRight(i int, h Hash) bool {
	return s.rightBF[i].MayContainHash(h)
}
func (s *heapSource) Postings(nl string) []int32 { return s.inverted[nl] }

func (s *heapSource) InLeft(i int, nl string) bool  { return containsString(s.sortedLeft[i], nl) }
func (s *heapSource) InRight(i int, nl string) bool { return containsString(s.sortedRight[i], nl) }

func containsString(sorted []string, v string) bool {
	j := sort.SearchStrings(sorted, v)
	return j < len(sorted) && sorted[j] == v
}
