package index

import (
	"fmt"
	"testing"

	"mapsynth/internal/mapping"
	"mapsynth/internal/table"
)

func mappingOf(id int, pairs [][2]string) *mapping.Mapping {
	ls := make([]string, len(pairs))
	rs := make([]string, len(pairs))
	for i, p := range pairs {
		ls[i] = p[0]
		rs[i] = p[1]
	}
	b := table.NewBinaryTable(id, id, "d", "l", "r", ls, rs)
	return mapping.Build(id, []*table.BinaryTable{b})
}

func TestBloomBasics(t *testing.T) {
	b := NewBloom(100, 0.01)
	keys := []string{"alpha", "beta", "gamma", "delta"}
	for _, k := range keys {
		b.Add(k)
	}
	for _, k := range keys {
		if !b.MayContain(k) {
			t.Errorf("false negative for %q", k)
		}
	}
	if b.Len() != len(keys) {
		t.Errorf("Len = %d", b.Len())
	}
}

func TestBloomFalsePositiveRate(t *testing.T) {
	b := NewBloom(1000, 0.01)
	for i := 0; i < 1000; i++ {
		b.Add(fmt.Sprintf("member-%d", i))
	}
	fp := 0
	const probes = 10000
	for i := 0; i < probes; i++ {
		if b.MayContain(fmt.Sprintf("absent-%d", i)) {
			fp++
		}
	}
	rate := float64(fp) / probes
	if rate > 0.03 {
		t.Errorf("false positive rate %.4f exceeds 3x target", rate)
	}
}

func TestBloomNeverFalseNegative(t *testing.T) {
	b := NewBloom(10, 0.001) // deliberately undersized relative to inserts
	for i := 0; i < 500; i++ {
		b.Add(fmt.Sprintf("k%d", i))
	}
	for i := 0; i < 500; i++ {
		if !b.MayContain(fmt.Sprintf("k%d", i)) {
			t.Fatalf("false negative at %d", i)
		}
	}
}

func TestBloomDegenerateParams(t *testing.T) {
	b := NewBloom(0, 5.0) // clamped
	b.Add("x")
	if !b.MayContain("x") {
		t.Error("clamped filter must still work")
	}
	if b.Bits() < 64 {
		t.Errorf("Bits = %d, want >= 64", b.Bits())
	}
}

func TestLookupLeft(t *testing.T) {
	states := mappingOf(0, [][2]string{
		{"California", "CA"}, {"Washington", "WA"}, {"Oregon", "OR"}, {"Texas", "TX"},
	})
	countries := mappingOf(1, [][2]string{
		{"Japan", "JPN"}, {"Canada", "CAN"}, {"Peru", "PER"},
	})
	ix := Build([]*mapping.Mapping{states, countries})
	if ix.Len() != 2 {
		t.Fatalf("Len = %d", ix.Len())
	}
	hits := ix.LookupLeft([]string{"california", "TEXAS", "Oregon"}, 0.6)
	if len(hits) != 1 || hits[0].Index != 0 {
		t.Fatalf("hits = %+v, want the states mapping", hits)
	}
	if hits[0].Coverage != 1.0 || hits[0].Matched != 3 {
		t.Errorf("hit = %+v", hits[0])
	}
	// Coverage below threshold: no hit.
	none := ix.LookupLeft([]string{"California", "Atlantis", "Mordor"}, 0.8)
	if len(none) != 0 {
		t.Errorf("expected no hits, got %+v", none)
	}
}

func TestMixedColumnHits(t *testing.T) {
	states := mappingOf(0, [][2]string{
		{"California", "CA"}, {"Washington", "WA"}, {"Oregon", "OR"},
	})
	ix := Build([]*mapping.Mapping{states})
	// A column mixing full names and abbreviations (Table 3 of the paper).
	column := []string{"California", "Washington", "OR", "CA"}
	hits := ix.MixedColumnHits(column, 1, 0.8)
	if len(hits) != 1 {
		t.Fatalf("hits = %+v", hits)
	}
	// A pure column is not "mixed".
	pure := ix.MixedColumnHits([]string{"California", "Washington"}, 1, 0.8)
	if len(pure) != 0 {
		t.Errorf("pure column should not be flagged: %+v", pure)
	}
}

func TestLookupEmptyQuery(t *testing.T) {
	ix := Build([]*mapping.Mapping{mappingOf(0, [][2]string{{"a", "1"}})})
	if hits := ix.LookupLeft(nil, 0.5); hits != nil {
		t.Errorf("nil query should give nil hits, got %v", hits)
	}
	if hits := ix.LookupLeft([]string{"", "--"}, 0.5); hits != nil {
		t.Errorf("empty values should give nil hits, got %v", hits)
	}
}
