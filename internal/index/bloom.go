// Package index provides fast containment lookup over synthesized mapping
// tables. The paper motivates pre-computed mappings partly because they can
// be "indexed ... using hash-based techniques (e.g., bloom filters) for
// efficient lookup based on value containment" (Section 1); this package is
// that index: a Bloom filter per mapping column plus an exact inverted index
// for retrieval.
package index

import (
	"hash/fnv"
	"math"
)

// Bloom is a classic Bloom filter over string keys with k FNV-derived hash
// functions. The zero value is not usable; construct with NewBloom.
type Bloom struct {
	bits []uint64
	m    uint64 // number of bits
	k    int    // number of hash functions
	n    int    // elements added
}

// NewBloom sizes a filter for the expected number of elements and target
// false-positive probability. It clamps to at least 64 bits and 1 hash.
func NewBloom(expected int, fp float64) *Bloom {
	if expected < 1 {
		expected = 1
	}
	if fp <= 0 || fp >= 1 {
		fp = 0.01
	}
	mf := -float64(expected) * math.Log(fp) / (math.Ln2 * math.Ln2)
	m := uint64(mf)
	if m < 64 {
		m = 64
	}
	k := int(math.Round(mf / float64(expected) * math.Ln2))
	if k < 1 {
		k = 1
	}
	if k > 16 {
		k = 16
	}
	return &Bloom{bits: make([]uint64, (m+63)/64), m: m, k: k}
}

// hashPair derives two independent 64-bit hashes of s (double hashing
// generates the k positions: h1 + i*h2).
func hashPair(s string) (uint64, uint64) {
	h := fnv.New64a()
	h.Write([]byte(s))
	h1 := h.Sum64()
	h.Write([]byte{0xff})
	h2 := h.Sum64() | 1 // odd, so it cycles all positions
	return h1, h2
}

// Hash is the precomputed double-hash of one key. Callers probing the same
// key against many filters (the per-mapping pre-screen loop) hash once and
// reuse it instead of re-hashing per filter.
type Hash struct{ H1, H2 uint64 }

// HashOf precomputes the double-hash of a key for MayContainHash /
// BloomContains.
func HashOf(s string) Hash {
	h1, h2 := hashPair(s)
	return Hash{h1, h2}
}

// Add inserts a key.
func (b *Bloom) Add(s string) {
	h1, h2 := hashPair(s)
	for i := 0; i < b.k; i++ {
		pos := (h1 + uint64(i)*h2) % b.m
		b.bits[pos/64] |= 1 << (pos % 64)
	}
	b.n++
}

// MayContain reports whether the key might be in the set (never false
// negatives; false positives at roughly the configured rate).
func (b *Bloom) MayContain(s string) bool {
	return BloomContains(b.bits, b.m, b.k, HashOf(s))
}

// MayContainHash is MayContain with the key's hash precomputed.
func (b *Bloom) MayContainHash(h Hash) bool {
	return BloomContains(b.bits, b.m, b.k, h)
}

// BloomContains probes an m-bit, k-hash filter stored as raw words — the
// primitive shared by heap filters and filters served directly out of a
// mapped snapshot section, which have no *Bloom object at all. Out-of-range
// word indexes (corrupt persisted parameters) read as definite misses
// rather than panicking.
func BloomContains(words []uint64, m uint64, k int, h Hash) bool {
	if m == 0 || k < 1 {
		return false
	}
	for i := 0; i < k; i++ {
		pos := (h.H1 + uint64(i)*h.H2) % m
		w := pos / 64
		if w >= uint64(len(words)) || words[w]&(1<<(pos%64)) == 0 {
			return false
		}
	}
	return true
}

// Len returns the number of keys added.
func (b *Bloom) Len() int { return b.n }

// Bits returns the filter size in bits.
func (b *Bloom) Bits() uint64 { return b.m }

// K returns the number of hash functions.
func (b *Bloom) K() int { return b.k }

// Words exposes the raw bit array for persistence. The slice is the
// filter's live storage; callers must not mutate it.
func (b *Bloom) Words() []uint64 { return b.bits }
