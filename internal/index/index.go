package index

import (
	"sort"

	"mapsynth/internal/mapping"
	"mapsynth/internal/textnorm"
)

// MappingIndex answers "which synthesized mappings contain (many of) these
// values in their left column?" — the lookup primitive behind auto-correct,
// auto-fill and auto-join. Each mapping gets a Bloom filter over its
// normalized left and right values for cheap pre-screening, backed by an
// exact inverted index for scoring.
type MappingIndex struct {
	mappings []*mapping.Mapping
	leftBF   []*Bloom
	rightBF  []*Bloom
	// inverted: normalized left value -> mapping positions containing it.
	inverted map[string][]int32
}

// Build indexes the given mappings. The slice is retained; mappings must
// not be mutated afterwards.
func Build(maps []*mapping.Mapping) *MappingIndex {
	ix := &MappingIndex{
		mappings: maps,
		leftBF:   make([]*Bloom, len(maps)),
		rightBF:  make([]*Bloom, len(maps)),
		inverted: make(map[string][]int32),
	}
	for i, m := range maps {
		lb := NewBloom(len(m.Pairs), 0.01)
		rb := NewBloom(len(m.Pairs), 0.01)
		seenL := make(map[string]struct{})
		for _, p := range m.Pairs {
			nl, nr, ok := textnorm.NormalizePair(p.L, p.R)
			if !ok {
				continue
			}
			lb.Add(nl)
			rb.Add(nr)
			if _, dup := seenL[nl]; !dup {
				seenL[nl] = struct{}{}
				ix.inverted[nl] = append(ix.inverted[nl], int32(i))
			}
		}
		ix.leftBF[i] = lb
		ix.rightBF[i] = rb
	}
	return ix
}

// Len returns the number of indexed mappings.
func (ix *MappingIndex) Len() int { return len(ix.mappings) }

// Mapping returns the i-th indexed mapping.
func (ix *MappingIndex) Mapping(i int) *mapping.Mapping { return ix.mappings[i] }

// Hit is one candidate mapping for a query column.
type Hit struct {
	// Index is the mapping's position in the index.
	Index int
	// Mapping is the matched mapping.
	Mapping *mapping.Mapping
	// Coverage is the fraction of query values found in the mapping's left
	// column.
	Coverage float64
	// Matched is the number of query values found.
	Matched int
}

// LookupLeft finds mappings whose left column covers at least minCoverage of
// the query values. Results are sorted by coverage descending, then by more
// contributing domains (popularity), then by index for determinism.
func (ix *MappingIndex) LookupLeft(values []string, minCoverage float64) []Hit {
	normed := make([]string, 0, len(values))
	seen := make(map[string]struct{}, len(values))
	for _, v := range values {
		nv := textnorm.Normalize(v)
		if nv == "" {
			continue
		}
		if _, dup := seen[nv]; dup {
			continue
		}
		seen[nv] = struct{}{}
		normed = append(normed, nv)
	}
	if len(normed) == 0 {
		return nil
	}
	// Bloom pre-screen: count prospective matches per mapping.
	bloomCount := make(map[int]int)
	for _, nv := range normed {
		for i, bf := range ix.leftBF {
			if bf.MayContain(nv) {
				bloomCount[i]++
			}
		}
	}
	minMatched := int(minCoverage * float64(len(normed)))
	var hits []Hit
	for i, bc := range bloomCount {
		if bc < minMatched {
			continue // even with false positives it can't reach coverage
		}
		// Exact verification via the inverted index.
		matched := 0
		for _, nv := range normed {
			if containsMapping(ix.inverted[nv], int32(i)) {
				matched++
			}
		}
		cov := float64(matched) / float64(len(normed))
		if cov >= minCoverage && matched > 0 {
			hits = append(hits, Hit{Index: i, Mapping: ix.mappings[i], Coverage: cov, Matched: matched})
		}
	}
	sort.Slice(hits, func(a, b int) bool {
		if hits[a].Coverage != hits[b].Coverage {
			return hits[a].Coverage > hits[b].Coverage
		}
		da, db := hits[a].Mapping.NumDomains(), hits[b].Mapping.NumDomains()
		if da != db {
			return da > db
		}
		return hits[a].Index < hits[b].Index
	})
	return hits
}

func containsMapping(list []int32, id int32) bool {
	for _, x := range list {
		if x == id {
			return true
		}
	}
	return false
}

// MixedColumnHits finds mappings where the query values are split between
// the left and right columns — the auto-correction signal (Table 3: a state
// column mixing full names and abbreviations). A hit requires at least
// minEach values on each side and combined coverage of minCoverage.
func (ix *MappingIndex) MixedColumnHits(values []string, minEach int, minCoverage float64) []Hit {
	normed := make([]string, 0, len(values))
	seen := make(map[string]struct{}, len(values))
	for _, v := range values {
		nv := textnorm.Normalize(v)
		if nv == "" {
			continue
		}
		if _, dup := seen[nv]; dup {
			continue
		}
		seen[nv] = struct{}{}
		normed = append(normed, nv)
	}
	if len(normed) == 0 {
		return nil
	}
	var hits []Hit
	for i, m := range ix.mappings {
		lb, rb := ix.leftBF[i], ix.rightBF[i]
		var leftVals, rightVals int
		// Bloom screen then exact check against the mapping's value sets.
		leftSet, rightSet := mappingValueSets(m)
		for _, nv := range normed {
			inL := lb.MayContain(nv)
			inR := rb.MayContain(nv)
			if inL {
				_, inL = leftSet[nv]
			}
			if inR {
				_, inR = rightSet[nv]
			}
			switch {
			case inL && !inR:
				leftVals++
			case inR && !inL:
				rightVals++
			case inL && inR:
				leftVals++ // ambiguous values count toward the left
			}
		}
		total := leftVals + rightVals
		cov := float64(total) / float64(len(normed))
		if leftVals >= minEach && rightVals >= minEach && cov >= minCoverage {
			hits = append(hits, Hit{Index: i, Mapping: m, Coverage: cov, Matched: total})
		}
	}
	sort.Slice(hits, func(a, b int) bool {
		if hits[a].Coverage != hits[b].Coverage {
			return hits[a].Coverage > hits[b].Coverage
		}
		return hits[a].Index < hits[b].Index
	})
	return hits
}

// mappingValueSets materializes normalized left and right value sets of a
// mapping. Small mappings dominate, so recomputation is cheap relative to
// storing both sets for every mapping permanently.
func mappingValueSets(m *mapping.Mapping) (left, right map[string]struct{}) {
	left = make(map[string]struct{}, len(m.Pairs))
	right = make(map[string]struct{}, len(m.Pairs))
	for _, p := range m.Pairs {
		nl, nr, ok := textnorm.NormalizePair(p.L, p.R)
		if !ok {
			continue
		}
		left[nl] = struct{}{}
		right[nr] = struct{}{}
	}
	return left, right
}
