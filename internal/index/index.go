package index

import (
	"sort"

	"mapsynth/internal/mapping"
	"mapsynth/internal/textnorm"
)

// MappingIndex answers "which synthesized mappings contain (many of) these
// values in their left column?" — the lookup primitive behind auto-correct,
// auto-fill and auto-join. Each mapping gets a Bloom filter over its
// normalized left and right values for cheap pre-screening, backed by an
// exact inverted index for scoring. The storage behind the filters,
// postings and mappings is a pluggable Source: heap structures built by
// Build, or a mapped v2 snapshot region served zero-copy via FromSource.
type MappingIndex struct {
	src Source
}

// Build indexes the given mappings on the heap. The slice is retained;
// mappings must not be mutated afterwards.
func Build(maps []*mapping.Mapping) *MappingIndex {
	return &MappingIndex{src: newHeapSource(maps)}
}

// FromSource wraps an existing Source — the entry point for mmap-backed
// snapshot sources, whose filters and postings are already persisted and
// must not be rebuilt.
func FromSource(src Source) *MappingIndex {
	return &MappingIndex{src: src}
}

// Len returns the number of indexed mappings.
func (ix *MappingIndex) Len() int { return ix.src.Len() }

// Mapping returns the i-th indexed mapping.
func (ix *MappingIndex) Mapping(i int) *mapping.Mapping { return ix.src.Mapping(i) }

// Source returns the index's storage backend.
func (ix *MappingIndex) Source() Source { return ix.src }

// Hit is one candidate mapping for a query column.
type Hit struct {
	// Index is the mapping's position in the index.
	Index int
	// Mapping is the matched mapping.
	Mapping *mapping.Mapping
	// Coverage is the fraction of query values found in the mapping's left
	// column.
	Coverage float64
	// Matched is the number of query values found.
	Matched int
}

// normalizeQuery dedups and normalizes the query values, dropping empties.
func normalizeQuery(values []string) []string {
	normed := make([]string, 0, len(values))
	seen := make(map[string]struct{}, len(values))
	for _, v := range values {
		nv := textnorm.Normalize(v)
		if nv == "" {
			continue
		}
		if _, dup := seen[nv]; dup {
			continue
		}
		seen[nv] = struct{}{}
		normed = append(normed, nv)
	}
	return normed
}

// LookupLeft finds mappings whose left column covers at least minCoverage of
// the query values. Results are sorted by coverage descending, then by more
// contributing domains (popularity), then by index for determinism.
func (ix *MappingIndex) LookupLeft(values []string, minCoverage float64) []Hit {
	normed := normalizeQuery(values)
	if len(normed) == 0 {
		return nil
	}
	// Bloom pre-screen: count prospective matches per mapping. Each value
	// is hashed once and probed against every mapping's filter.
	n := ix.src.Len()
	bloomCount := make(map[int]int)
	for _, nv := range normed {
		h := HashOf(nv)
		for i := 0; i < n; i++ {
			if ix.src.MayContainLeft(i, h) {
				bloomCount[i]++
			}
		}
	}
	minMatched := int(minCoverage * float64(len(normed)))
	var hits []Hit
	for i, bc := range bloomCount {
		if bc < minMatched {
			continue // even with false positives it can't reach coverage
		}
		// Exact verification via the inverted postings.
		matched := 0
		for _, nv := range normed {
			if containsMapping(ix.src.Postings(nv), int32(i)) {
				matched++
			}
		}
		cov := float64(matched) / float64(len(normed))
		if cov >= minCoverage && matched > 0 {
			hits = append(hits, Hit{Index: i, Mapping: ix.src.Mapping(i), Coverage: cov, Matched: matched})
		}
	}
	sort.Slice(hits, func(a, b int) bool {
		if hits[a].Coverage != hits[b].Coverage {
			return hits[a].Coverage > hits[b].Coverage
		}
		da, db := hits[a].Mapping.NumDomains(), hits[b].Mapping.NumDomains()
		if da != db {
			return da > db
		}
		return hits[a].Index < hits[b].Index
	})
	return hits
}

func containsMapping(list []int32, id int32) bool {
	for _, x := range list {
		if x == id {
			return true
		}
	}
	return false
}

// MixedColumnHits finds mappings where the query values are split between
// the left and right columns — the auto-correction signal (Table 3: a state
// column mixing full names and abbreviations). A hit requires at least
// minEach values on each side and combined coverage of minCoverage.
func (ix *MappingIndex) MixedColumnHits(values []string, minEach int, minCoverage float64) []Hit {
	normed := normalizeQuery(values)
	if len(normed) == 0 {
		return nil
	}
	hashes := make([]Hash, len(normed))
	for j, nv := range normed {
		hashes[j] = HashOf(nv)
	}
	var hits []Hit
	for i := 0; i < ix.src.Len(); i++ {
		var leftVals, rightVals int
		// Bloom screen then exact check against the mapping's value sets;
		// the filters have no false negatives, so the conjunction equals
		// exact membership.
		for j, nv := range normed {
			inL := ix.src.MayContainLeft(i, hashes[j]) && ix.src.InLeft(i, nv)
			inR := ix.src.MayContainRight(i, hashes[j]) && ix.src.InRight(i, nv)
			switch {
			case inL && !inR:
				leftVals++
			case inR && !inL:
				rightVals++
			case inL && inR:
				leftVals++ // ambiguous values count toward the left
			}
		}
		total := leftVals + rightVals
		cov := float64(total) / float64(len(normed))
		if leftVals >= minEach && rightVals >= minEach && cov >= minCoverage {
			hits = append(hits, Hit{Index: i, Mapping: ix.src.Mapping(i), Coverage: cov, Matched: total})
		}
	}
	sort.Slice(hits, func(a, b int) bool {
		if hits[a].Coverage != hits[b].Coverage {
			return hits[a].Coverage > hits[b].Coverage
		}
		return hits[a].Index < hits[b].Index
	})
	return hits
}
