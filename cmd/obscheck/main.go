// Command obscheck is the observability layer's end-to-end acceptance
// check, run by CI: it synthesizes the seed corpus, serves the snapshot
// over real HTTP, scrapes GET /v1/metrics (validating the Prometheus text
// exposition with internal/metrics.Lint), drives a mixed loadgen workload,
// and asserts the scraped counters moved by what the load generator
// reports. It then triggers POST /v1/reload {"rebuild":true} and requires
// the pipeline's per-stage metrics to appear, and finally cross-checks the
// structured JSON access log: every line parses, carries a request_id, and
// a deliberately failed request's ID shows up both in the client-side error
// and in a server-side log line with the matching envelope code.
//
// Usage:
//
//	obscheck [-duration 2s] [-scale 1.0] [-seed 42]
//
// Exit status 0 means every assertion held; any failure prints the
// violated assertion and exits 1.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"mapsynth/internal/corpusgen"
	"mapsynth/internal/loadgen"
	"mapsynth/internal/mapping"
	"mapsynth/internal/metrics"
	"mapsynth/internal/pipeline"
	"mapsynth/internal/serve"
	"mapsynth/internal/snapshot"
)

func main() {
	duration := flag.Duration("duration", 2*time.Second, "loadgen phase length")
	scale := flag.Float64("scale", 1.0, "corpus scale; 1.0 is the full seed corpus")
	seed := flag.Int64("seed", 42, "corpus seed")
	flag.Parse()
	if err := run(*duration, *scale, *seed); err != nil {
		fmt.Fprintf(os.Stderr, "obscheck: FAIL: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("obscheck: PASS")
}

func run(duration time.Duration, scale float64, seed int64) error {
	ctx := context.Background()

	// 1. Seed snapshot: corpusgen → pipeline → snapshot file.
	fmt.Println("obscheck: synthesizing seed corpus...")
	corpus := corpusgen.GenerateWeb(corpusgen.Options{Seed: seed, Scale: scale})
	res, err := pipeline.New(pipeline.DefaultConfig()).Run(ctx, corpus.Tables)
	if err != nil {
		return fmt.Errorf("synthesis: %w", err)
	}
	dir, err := os.MkdirTemp("", "obscheck")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	snapPath := filepath.Join(dir, "seed.snap")
	if err := snapshot.WriteFile(snapPath, res.Mappings); err != nil {
		return fmt.Errorf("snapshot: %w", err)
	}

	// 2. Serve it with the full observability wiring of cmd/serve: one
	// shared registry, pipeline instrumentation for rebuilds, JSON access
	// logs into a buffer we can parse afterwards.
	reg := metrics.New()
	pipelineInst := pipeline.MetricsInstrumentation(reg)
	var logBuf bytes.Buffer
	logger := slog.New(slog.NewJSONHandler(&logBuf, nil))
	rebuild := func(ctx context.Context) ([]*mapping.Mapping, error) {
		eng := pipeline.New(pipeline.DefaultConfig())
		eng.SetInstrumentation(pipelineInst)
		r, err := eng.Run(ctx, corpus.Tables)
		if err != nil {
			return nil, err
		}
		return r.Mappings, nil
	}
	srv, err := serve.New(serve.Options{
		SnapshotPath: snapPath,
		CacheSize:    1024,
		Rebuild:      rebuild,
		Metrics:      reg,
		Logger:       logger,
	})
	if err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// 3. First scrape: valid exposition, before any traffic beyond it.
	before, err := scrape(ts.URL)
	if err != nil {
		return err
	}

	// 4. Load phase through the SDK.
	fmt.Printf("obscheck: driving mixed workload for %v...\n", duration)
	maps, err := snapshot.ReadFile(snapPath)
	if err != nil {
		return err
	}
	wl, err := loadgen.NewWorkload(maps)
	if err != nil {
		return err
	}
	concurrency := 4
	rep, err := loadgen.Run(ctx, loadgen.Config{
		BaseURL:     ts.URL,
		Duration:    duration,
		Concurrency: concurrency,
		BatchSize:   8,
		Seed:        seed,
		Client:      ts.Client(),
	}, wl)
	if err != nil {
		return fmt.Errorf("loadgen: %w", err)
	}
	if rep.Requests == 0 {
		return fmt.Errorf("loadgen issued no requests")
	}
	if rep.Errors != 0 {
		return fmt.Errorf("loadgen saw %d errors; samples: %+v", rep.Errors, rep.ErrorSamples)
	}

	// 5. One deliberate failure with a pinned request ID, for log
	// correlation below.
	const badID = "obscheck-bad-1"
	breq, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/autofill", strings.NewReader("{}"))
	if err != nil {
		return err
	}
	breq.Header.Set("Content-Type", "application/json")
	breq.Header.Set("X-Request-ID", badID)
	bresp, err := ts.Client().Do(breq)
	if err != nil {
		return err
	}
	io.Copy(io.Discard, bresp.Body)
	bresp.Body.Close()
	if bresp.StatusCode != http.StatusBadRequest {
		return fmt.Errorf("empty autofill answered %d, want 400", bresp.StatusCode)
	}

	// 6. Second scrape: counters must have moved by what loadgen reports.
	after, err := scrape(ts.URL)
	if err != nil {
		return err
	}
	reqDelta := sumFamily(after, "mapsynth_requests_total", "") - sumFamily(before, "mapsynth_requests_total", "")
	// The run deadline can tear down up to one in-flight request per worker
	// after the server counted it, so the server may be ahead by at most
	// the concurrency; the deliberate 400 adds one more.
	minWant := float64(rep.Requests + 1)
	maxWant := float64(rep.Requests + 1 + int64(concurrency))
	if reqDelta < minWant || reqDelta > maxWant {
		return fmt.Errorf("mapsynth_requests_total moved by %.0f, loadgen issued %d (want [%.0f, %.0f])",
			reqDelta, rep.Requests, minWant, maxWant)
	}
	throttledDelta := sumFamily(after, "mapsynth_errors_total", `code="overloaded"`) -
		sumFamily(before, "mapsynth_errors_total", `code="overloaded"`)
	if throttledDelta < float64(rep.Throttled) || throttledDelta > float64(rep.Throttled+int64(concurrency)) {
		return fmt.Errorf("errors_total{overloaded} moved by %.0f, loadgen throttled %d", throttledDelta, rep.Throttled)
	}
	badDelta := sumFamily(after, "mapsynth_errors_total", `code="bad_request"`) -
		sumFamily(before, "mapsynth_errors_total", `code="bad_request"`)
	if badDelta != 1 {
		return fmt.Errorf("errors_total{bad_request} moved by %.0f, want exactly 1", badDelta)
	}
	if got := sumFamily(after, "mapsynth_corpora", ""); got != 1 {
		return fmt.Errorf("mapsynth_corpora = %.0f, want 1", got)
	}

	// 7. Rebuild reload: the pipeline's stage metrics must appear.
	fmt.Println("obscheck: rebuild reload...")
	rresp, err := ts.Client().Post(ts.URL+"/v1/reload", "application/json",
		strings.NewReader(`{"rebuild":true}`))
	if err != nil {
		return err
	}
	io.Copy(io.Discard, rresp.Body)
	rresp.Body.Close()
	if rresp.StatusCode != http.StatusOK {
		return fmt.Errorf("rebuild reload answered %d", rresp.StatusCode)
	}
	rebuilt, err := scrape(ts.URL)
	if err != nil {
		return err
	}
	for _, stage := range []string{"index", "extract", "graph", "partition", "resolve"} {
		if sumFamily(rebuilt, "mapsynth_pipeline_stage_runs_total", `stage="`+stage+`"`) < 1 {
			return fmt.Errorf("pipeline stage %q missing from exposition after rebuild", stage)
		}
	}

	// 8. Access log: every line is valid JSON with a request_id, and the
	// deliberate failure is correlated by ID and envelope code.
	lines := 0
	foundBad := false
	for _, line := range strings.Split(strings.TrimSpace(logBuf.String()), "\n") {
		if line == "" {
			continue
		}
		var entry struct {
			Msg       string  `json:"msg"`
			RequestID string  `json:"request_id"`
			Route     string  `json:"route"`
			Status    int     `json:"status"`
			Code      string  `json:"code"`
			Duration  float64 `json:"duration_ms"`
		}
		if err := json.Unmarshal([]byte(line), &entry); err != nil {
			return fmt.Errorf("access log line is not JSON: %q: %v", line, err)
		}
		if entry.Msg != "request" {
			continue
		}
		lines++
		if entry.RequestID == "" {
			return fmt.Errorf("access log line missing request_id: %q", line)
		}
		if entry.RequestID == badID {
			foundBad = true
			if entry.Status != http.StatusBadRequest || entry.Code != "bad_request" {
				return fmt.Errorf("correlated log line wrong: %q", line)
			}
		}
	}
	if lines == 0 {
		return fmt.Errorf("no access log lines captured")
	}
	if !foundBad {
		return fmt.Errorf("deliberate failure %s not found in access log", badID)
	}

	fmt.Printf("obscheck: %d requests, %d throttled, %.0f counted server-side, %d access-log lines, all correlated\n",
		rep.Requests, rep.Throttled, reqDelta, lines)
	return nil
}

// scrape fetches /v1/metrics, checks status and content type, and lints the
// exposition before handing the body back.
func scrape(base string) ([]byte, error) {
	resp, err := http.Get(base + "/v1/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("/v1/metrics answered %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != metrics.TextContentType {
		return nil, fmt.Errorf("/v1/metrics content type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if err := metrics.Lint(body); err != nil {
		return nil, fmt.Errorf("exposition lint: %w", err)
	}
	return body, nil
}

// sumFamily adds up every sample of the exactly named family whose raw
// label block contains labelSub ("" matches all label sets). Histogram
// suffixes (_bucket, _sum, _count) have distinct names, so they never fold
// into their base family here.
func sumFamily(exposition []byte, family, labelSub string) float64 {
	var sum float64
	for _, line := range strings.Split(string(exposition), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		labels := ""
		if i := strings.IndexByte(line, '{'); i >= 0 {
			j := strings.LastIndexByte(line, '}')
			if j < i {
				continue
			}
			labels = line[i+1 : j]
			line = line[:i] + line[j+1:]
		}
		fields := strings.Fields(line)
		if len(fields) < 2 || fields[0] != family {
			continue
		}
		if labelSub != "" && !strings.Contains(labels, labelSub) {
			continue
		}
		v, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			continue
		}
		sum += v
	}
	return sum
}
