// Command corpusgen writes a synthetic table corpus to a JSON file so it
// can be inspected or consumed by external tools.
//
// Usage:
//
//	corpusgen [-profile web|enterprise] [-seed N] [-o corpus.json]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"mapsynth/internal/corpusgen"
)

func main() {
	profile := flag.String("profile", "web", "corpus profile: web or enterprise")
	seed := flag.Int64("seed", 42, "generation seed")
	out := flag.String("o", "corpus.json", "output path")
	flag.Parse()

	var corpus *corpusgen.Corpus
	switch *profile {
	case "web":
		corpus = corpusgen.GenerateWeb(corpusgen.Options{Seed: *seed})
	case "enterprise":
		corpus = corpusgen.GenerateEnterprise(corpusgen.Options{Seed: *seed})
	default:
		fmt.Fprintf(os.Stderr, "unknown profile %q\n", *profile)
		os.Exit(2)
	}
	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", " ")
	if err := enc.Encode(corpus.Tables); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %d tables to %s\n", len(corpus.Tables), *out)
}
