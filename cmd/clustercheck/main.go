// Command clustercheck is the cluster serving layer's end-to-end
// acceptance check, run by CI: it synthesizes the seed corpus, boots three
// full-replica data nodes from v2 (mmap) snapshots on real listeners,
// fronts them with a scatter-gather coordinator, and drives a mixed
// single/batch loadgen workload through the coordinator while a snapshot
// roll re-ships the corpus replica-by-replica mid-run. The invariants are
// absolute: zero client-visible errors across the whole run, the roll
// reaches every follower, and the cluster ends healthy and undegraded with
// every replica at the shipped version.
//
// Usage:
//
//	clustercheck [-duration 4s] [-scale 1.0] [-seed 42]
//
// Exit status 0 means every assertion held; any failure prints the
// violated assertion and exits 1.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"time"

	"mapsynth/internal/cluster"
	"mapsynth/internal/corpusgen"
	"mapsynth/internal/loadgen"
	"mapsynth/internal/pipeline"
	"mapsynth/internal/serve"
	"mapsynth/internal/snapshot"
	"mapsynth/pkg/client"
)

func main() {
	duration := flag.Duration("duration", 4*time.Second, "loadgen run length")
	scale := flag.Float64("scale", 1.0, "corpus scale; 1.0 is the full seed corpus")
	seed := flag.Int64("seed", 42, "corpus seed")
	flag.Parse()
	if err := run(*duration, *scale, *seed); err != nil {
		fmt.Fprintf(os.Stderr, "clustercheck: FAIL: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("clustercheck: PASS")
}

func run(duration time.Duration, scale float64, seed int64) error {
	ctx := context.Background()

	// 1. Seed corpus → v2 (mmap) snapshot, the format snapshot shipping
	// moves between replicas.
	fmt.Println("clustercheck: synthesizing seed corpus...")
	corpus := corpusgen.GenerateWeb(corpusgen.Options{Seed: seed, Scale: scale})
	res, err := pipeline.New(pipeline.DefaultConfig()).Run(ctx, corpus.Tables)
	if err != nil {
		return fmt.Errorf("synthesis: %w", err)
	}
	dir, err := os.MkdirTemp("", "clustercheck")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	snapPath := filepath.Join(dir, "seed.v2.snap")
	if err := snapshot.WriteFileV2(snapPath, res.Mappings); err != nil {
		return fmt.Errorf("snapshot: %w", err)
	}

	// 2. Three full-replica nodes on real listeners, each mmap-serving the
	// same snapshot with a preload hint — the cmd/serve data-node path.
	quiet := slog.New(slog.NewTextHandler(io.Discard, nil))
	peers := make([]cluster.Peer, 3)
	for i := range peers {
		srv, err := serve.New(serve.Options{
			SnapshotPath: snapPath,
			Madvise:      snapshot.AdviseWillNeed,
			CacheSize:    1024,
			Logger:       quiet,
		})
		if err != nil {
			return fmt.Errorf("node %d: %w", i+1, err)
		}
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		peers[i] = cluster.Peer{Name: fmt.Sprintf("n%d", i+1), Addr: ts.URL}
		fmt.Printf("clustercheck: node %s at %s\n", peers[i].Name, peers[i].Addr)
	}

	// 3. The coordinator, probed and serving on its own listener.
	topo, err := cluster.NewTopology(peers, 0)
	if err != nil {
		return err
	}
	co, err := cluster.New(topo, cluster.Options{
		ProbeInterval: 250 * time.Millisecond,
		Logger:        quiet,
	})
	if err != nil {
		return err
	}
	co.Start(ctx)
	front := httptest.NewServer(co.Handler())
	defer front.Close()
	sdk := client.New(front.URL)

	info, err := sdk.Cluster(ctx)
	if err != nil {
		return fmt.Errorf("GET /v1/cluster: %w", err)
	}
	alive := 0
	for _, p := range info.Peers {
		if p.Alive {
			alive++
		}
	}
	if alive != len(peers) || info.Degraded {
		return fmt.Errorf("cluster not healthy at start: %d/%d alive, degraded=%v",
			alive, len(peers), info.Degraded)
	}

	// The cluster-aware SDK client must bootstrap from the same surface.
	cc, err := client.NewCluster(ctx, front.URL)
	if err != nil {
		return fmt.Errorf("client.NewCluster: %w", err)
	}
	if _, err := cc.Lookup(ctx, res.Mappings[0].Pairs[0].L); err != nil {
		return fmt.Errorf("cluster-client lookup: %w", err)
	}

	// 4. Mixed workload through the coordinator; a quarter of the way in,
	// node n1 receives a freshly written snapshot and the coordinator
	// ships it to the other replicas while the load keeps flowing.
	wl, err := loadgen.NewWorkload(res.Mappings)
	if err != nil {
		return err
	}
	var (
		wg      sync.WaitGroup
		rollRep *client.RollReport
		rollErr error
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		time.Sleep(duration / 4)
		data, err := os.ReadFile(snapPath)
		if err != nil {
			rollErr = err
			return
		}
		if _, err := client.New(peers[0].Addr).Corpus(client.DefaultCorpus).Upload(ctx, data); err != nil {
			rollErr = fmt.Errorf("uploading new snapshot to n1: %w", err)
			return
		}
		rollRep, rollErr = sdk.RollCluster(ctx, client.RollRequest{Source: peers[0].Name})
	}()
	rep, err := loadgen.Run(ctx, loadgen.Config{
		BaseURL:  front.URL,
		Duration: duration,
		Seed:     seed,
	}, wl)
	wg.Wait()
	if err != nil {
		return fmt.Errorf("loadgen: %w", err)
	}
	fmt.Printf("clustercheck: %d requests, %.0f req/s, %d throttled, %d errors\n",
		rep.Requests, rep.AchievedQPS, rep.Throttled, rep.Errors)

	// 5. The verdict.
	if rollErr != nil {
		return fmt.Errorf("replica roll: %w", rollErr)
	}
	if want := len(peers) - 1; len(rollRep.Rolled) != want {
		return fmt.Errorf("roll reached %d replicas, want %d", len(rollRep.Rolled), want)
	}
	fmt.Printf("clustercheck: rolled %d replicas from %s (v%d, %d bytes) in %.0fms\n",
		len(rollRep.Rolled), rollRep.Source, rollRep.SourceVersion, rollRep.Bytes, rollRep.DurationMs)
	if rep.Errors != 0 {
		return fmt.Errorf("clients saw %d errors during the run: %+v", rep.Errors, rep.ErrorSamples)
	}
	if rep.Requests == 0 {
		return fmt.Errorf("loadgen issued no requests")
	}
	info, err = sdk.Cluster(ctx)
	if err != nil {
		return fmt.Errorf("GET /v1/cluster after roll: %w", err)
	}
	if info.Degraded {
		return fmt.Errorf("cluster degraded after roll: missing shards %v", info.MissingShards)
	}
	for _, p := range info.Peers {
		if !p.Alive {
			return fmt.Errorf("peer %s not alive after roll: %s", p.Name, p.Error)
		}
		if got := p.Corpora[client.DefaultCorpus].Version; got != rollRep.SourceVersion {
			return fmt.Errorf("peer %s at version %d after roll, want %d", p.Name, got, rollRep.SourceVersion)
		}
	}
	return nil
}
