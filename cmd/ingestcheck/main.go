// Command ingestcheck is the live-ingestion subsystem's end-to-end
// acceptance check, run by CI. It synthesizes a base corpus with one table
// held out, boots an ingest-enabled source node and a follower replica
// behind a scatter-gather coordinator, then proves the whole loop:
//
//  1. The held-out table streams in through POST /v1/corpora/{name}/tables
//     and the staleness report converges (applied LSN == head LSN).
//  2. The incrementally synthesized snapshot is byte-identical to a
//     from-scratch rebuild over base+ingested tables — the parity contract
//     that makes delta shipping trustworthy.
//  3. A cluster roll ships the change to the follower as a delta, the
//     delta is under 20% of the full snapshot's bytes for this one-table
//     change, and the follower's snapshot comes out byte-identical.
//
// Usage:
//
//	ingestcheck [-scale 0.5] [-seed 42]
//
// Exit status 0 means every assertion held; any failure prints the
// violated assertion and exits 1.
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net/http/httptest"
	"os"
	"time"

	"mapsynth/internal/cluster"
	"mapsynth/internal/corpusgen"
	"mapsynth/internal/pipeline"
	"mapsynth/internal/serve"
	"mapsynth/internal/snapshot"
	"mapsynth/internal/table"
	"mapsynth/pkg/client"
)

func main() {
	scale := flag.Float64("scale", 0.5, "corpus scale; 1.0 is the full seed corpus")
	seed := flag.Int64("seed", 42, "corpus seed")
	flag.Parse()
	if err := run(*scale, *seed); err != nil {
		fmt.Fprintf(os.Stderr, "ingestcheck: FAIL: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("ingestcheck: PASS")
}

func run(scale float64, seed int64) error {
	ctx := context.Background()

	// 1. Seed corpus with the last table held out: the base is what the
	// source serves at boot, the held table is what live ingestion adds.
	fmt.Println("ingestcheck: synthesizing base corpus...")
	corpus := corpusgen.GenerateWeb(corpusgen.Options{Seed: seed, Scale: scale})
	if len(corpus.Tables) < 2 {
		return fmt.Errorf("corpus too small: %d tables", len(corpus.Tables))
	}
	base := corpus.Tables[:len(corpus.Tables)-1]
	held := corpus.Tables[len(corpus.Tables)-1]
	cfg := pipeline.DefaultConfig()
	baseRes, err := pipeline.New(cfg).Run(ctx, base)
	if err != nil {
		return fmt.Errorf("base synthesis: %w", err)
	}
	var baseSnap bytes.Buffer
	if err := snapshot.WriteV2(&baseSnap, baseRes.Mappings); err != nil {
		return fmt.Errorf("base snapshot: %w", err)
	}

	// 2. Source node with ingestion enabled, follower without, both
	// starting from the identical v2 base image so the follower's
	// snapshot CRC names a base the source still holds in history.
	quiet := slog.New(slog.NewTextHandler(io.Discard, nil))
	ingestDir, err := os.MkdirTemp("", "ingestcheck")
	if err != nil {
		return err
	}
	defer os.RemoveAll(ingestDir)
	source := serve.NewFromMappings(baseRes.Mappings, serve.Options{
		CacheSize: 1024,
		IngestDir: ingestDir,
		IngestBase: func(ctx context.Context, corpus string) ([]*table.Table, error) {
			return base, nil
		},
		IngestConfig: &cfg,
		Logger:       quiet,
	})
	defer source.Close()
	follower := serve.NewFromMappings(baseRes.Mappings, serve.Options{CacheSize: 1024, Logger: quiet})
	tsSource := httptest.NewServer(source.Handler())
	defer tsSource.Close()
	tsFollower := httptest.NewServer(follower.Handler())
	defer tsFollower.Close()
	for _, u := range []string{tsSource.URL, tsFollower.URL} {
		if _, err := client.New(u).Corpus(client.DefaultCorpus).Upload(ctx, baseSnap.Bytes()); err != nil {
			return fmt.Errorf("installing base image on %s: %w", u, err)
		}
	}

	topo, err := cluster.NewTopology([]cluster.Peer{
		{Name: "source", Addr: tsSource.URL},
		{Name: "follower", Addr: tsFollower.URL},
	}, 0)
	if err != nil {
		return err
	}
	co, err := cluster.New(topo, cluster.Options{
		ProbeInterval: 100 * time.Millisecond,
		Logger:        quiet,
	})
	if err != nil {
		return err
	}
	co.Start(ctx)
	front := httptest.NewServer(co.Handler())
	defer front.Close()
	sdk := client.New(front.URL)

	// 3. Stream the held-out table in with wait=1: acceptance means the
	// row is fsynced to the append log, and the trailer reports the
	// incremental synthesis run that folded it into a live version.
	src := client.New(tsSource.URL).Corpus(client.DefaultCorpus)
	trailer, err := src.IngestTables(ctx, []client.IngestTable{ingestTableOf(held)},
		client.IngestOptions{Wait: true}, nil)
	if err != nil {
		return fmt.Errorf("ingesting held-out table: %w", err)
	}
	if trailer.Accepted != 1 || trailer.Synthesis != "applied" {
		return fmt.Errorf("ingest trailer = %+v, want 1 accepted/applied", trailer)
	}
	if trailer.AppliedLSN != trailer.HeadLSN {
		return fmt.Errorf("staleness did not converge: applied %d, head %d",
			trailer.AppliedLSN, trailer.HeadLSN)
	}
	info, err := src.Get(ctx)
	if err != nil {
		return err
	}
	if info.Ingest == nil || info.Ingest.Pending || info.Ingest.AppliedLSN != info.Ingest.HeadLSN {
		return fmt.Errorf("corpus staleness report not converged: %+v", info.Ingest)
	}
	fmt.Printf("ingestcheck: ingested table applied at LSN %d, version %d (cache %d hits / %d misses)\n",
		trailer.AppliedLSN, trailer.Version, info.Ingest.CacheHits, info.Ingest.CacheMisses)

	// 4. Parity: the incrementally synthesized live snapshot must be
	// byte-identical to a from-scratch rebuild over base+held.
	liveSnap, _, err := src.Snapshot(ctx)
	if err != nil {
		return fmt.Errorf("downloading live snapshot: %w", err)
	}
	fullRes, err := pipeline.New(cfg).Run(ctx, corpus.Tables)
	if err != nil {
		return fmt.Errorf("from-scratch synthesis: %w", err)
	}
	var fullSnap bytes.Buffer
	if err := snapshot.WriteV2(&fullSnap, fullRes.Mappings); err != nil {
		return err
	}
	if !bytes.Equal(liveSnap, fullSnap.Bytes()) {
		return fmt.Errorf("incremental snapshot (%d bytes) differs from from-scratch rebuild (%d bytes)",
			len(liveSnap), fullSnap.Len())
	}
	fmt.Printf("ingestcheck: incremental synthesis byte-identical to full rebuild (%d mappings, %d bytes)\n",
		len(fullRes.Mappings), len(liveSnap))

	// 5. Wait for the coordinator to probe both nodes — the roll's delta
	// preference keys off the follower's probed snapshot CRC.
	deadline := time.Now().Add(10 * time.Second)
	for {
		ci, err := sdk.Cluster(ctx)
		if err == nil {
			ready := 0
			for _, p := range ci.Peers {
				if p.Alive && p.Corpora[client.DefaultCorpus].SnapshotCRC != "" {
					ready++
				}
			}
			if ready == 2 {
				break
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("coordinator never probed CRC-identified replicas")
		}
		time.Sleep(50 * time.Millisecond)
	}

	// 6. Delta roll: the follower must catch up via a delta that is under
	// 20% of the full snapshot, and come out byte-identical.
	rep, err := sdk.RollCluster(ctx, client.RollRequest{Source: "source"})
	if err != nil {
		return fmt.Errorf("roll: %w", err)
	}
	if len(rep.Rolled) != 1 {
		return fmt.Errorf("roll reached %d replicas, want 1: %+v", len(rep.Rolled), rep)
	}
	rolled := rep.Rolled[0]
	if !rolled.Delta {
		return fmt.Errorf("follower rolled with a full image (%d bytes), want a delta", rolled.Bytes)
	}
	if limit := rep.Bytes / 5; rolled.Bytes >= limit {
		return fmt.Errorf("delta %d bytes, want < 20%% of the %d-byte full snapshot (%d)",
			rolled.Bytes, rep.Bytes, limit)
	}
	fmt.Printf("ingestcheck: delta roll shipped %d of %d bytes (%.1f%%)\n",
		rolled.Bytes, rep.Bytes, 100*float64(rolled.Bytes)/float64(rep.Bytes))
	followerSnap, _, err := client.New(tsFollower.URL).Corpus(client.DefaultCorpus).Snapshot(ctx)
	if err != nil {
		return err
	}
	if !bytes.Equal(followerSnap, liveSnap) {
		return fmt.Errorf("follower snapshot differs from source after delta roll")
	}
	return nil
}

// ingestTableOf converts a generated corpus table into its wire form.
func ingestTableOf(tab *table.Table) client.IngestTable {
	it := client.IngestTable{Domain: tab.Domain, Title: tab.Title}
	for _, c := range tab.Columns {
		it.Columns = append(it.Columns, client.IngestColumn{Name: c.Name, Values: c.Values})
	}
	return it
}
