// Command benchmark regenerates the paper's evaluation: every table and
// figure of Section 5 and the appendices, printed as text tables.
//
// Usage:
//
//	benchmark [-experiment all|figure7|figure8|figure9|figure10|figure11|
//	           figure14|figure15|sensitivity|appendixJ|appendixI|extraction]
//	          [-seed N]
package main

import (
	"flag"
	"fmt"
	"os"

	"mapsynth/internal/experiments"
)

func main() {
	exp := flag.String("experiment", "all", "which experiment to run")
	seed := flag.Int64("seed", experiments.DefaultSeed, "corpus seed")
	flag.Parse()

	w := os.Stdout
	needEnv := map[string]bool{
		"all": true, "figure7": true, "figure8": true, "figure14": true,
		"figure15": true, "sensitivity": true, "appendixJ": true,
		"appendixI": true, "extraction": true,
	}
	var env *experiments.Env
	if needEnv[*exp] {
		fmt.Fprintln(w, "generating web corpus and shared artifacts...")
		env = experiments.NewEnv(*seed)
	}

	run := func(name string) {
		switch name {
		case "figure7", "figure8":
			results := experiments.Figure7(w, env, *seed)
			experiments.Figure8(w, results)
		case "figure9":
			experiments.Figure9(w, *seed)
		case "figure10":
			experiments.Figure10(w, *seed)
		case "figure11":
			experiments.Figure11(w, *seed)
		case "figure14":
			results := experiments.Figure7(w, env, *seed)
			experiments.Figure14(w, env, results)
		case "figure15":
			experiments.Figure15(w, env)
		case "sensitivity":
			experiments.Sensitivity(w, env)
		case "appendixJ":
			experiments.AppendixJ(w, env, 200)
		case "appendixI":
			experiments.AppendixI(w, env)
		case "extraction":
			experiments.ExtractionStats(w, env)
		default:
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", name)
			os.Exit(2)
		}
	}
	if *exp == "all" {
		results := experiments.Figure7(w, env, *seed)
		experiments.Figure8(w, results)
		experiments.Figure14(w, env, results)
		experiments.ExtractionStats(w, env)
		experiments.Figure15(w, env)
		experiments.Figure9(w, *seed)
		experiments.Figure10(w, *seed)
		experiments.Figure11(w, *seed)
		experiments.AppendixJ(w, env, 200)
		experiments.AppendixI(w, env)
		experiments.Sensitivity(w, env)
		return
	}
	run(*exp)
}
