// Command benchmark regenerates the paper's evaluation: every table and
// figure of Section 5 and the appendices, printed as text tables.
//
// Usage:
//
//	benchmark [-experiment all|figure7|figure8|figure9|figure10|figure11|
//	           figure14|figure15|sensitivity|appendixJ|appendixI|extraction]
//	          [-seed N]
//	benchmark -suite [-out BENCH_N.json] [-seed N] [-scale F] [-duration D]
//	          [-compare BENCH_OLD.json] [-tolerance F]
//
// With -suite it instead runs the serving performance suite (synthesis wall
// time per stage, snapshot write/load time, per-format activation cost,
// lookup ns/op and allocs/op, and a closed-loop loadgen
// throughput/percentile run) and prints the result as JSON — the repeatable
// baseline the BENCH_*.json trajectory is built from. With -compare the new
// result is gated against an older report: any lower-is-better metric
// present in both that grew past -tolerance (a ratio; 0.5 allows 1.5×)
// fails the run with exit code 1, which is what the CI regression job keys
// off.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"mapsynth/internal/benchmark"
	"mapsynth/internal/experiments"
)

// runSuite executes the serving suite, writes its JSON to stdout and, when
// -out is set, to a file. When compare names an older report, the new result
// is gated against it and regressions fail the run.
func runSuite(seed int64, scale float64, duration time.Duration, out, compare string, tolerance float64) int {
	res, err := benchmark.RunSuite(context.Background(), benchmark.SuiteOptions{
		Seed:     seed,
		Scale:    scale,
		Duration: duration,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchmark: %v\n", err)
		return 1
	}
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchmark: %v\n", err)
		return 1
	}
	data = append(data, '\n')
	os.Stdout.Write(data)
	if out != "" {
		if err := os.WriteFile(out, data, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "benchmark: %v\n", err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", out)
	}
	if compare != "" {
		old, err := benchmark.ReadResult(compare)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchmark: %v\n", err)
			return 1
		}
		regs := benchmark.Compare(old, res, tolerance)
		if len(regs) == 0 {
			fmt.Fprintf(os.Stderr, "no regressions vs %s (tolerance %.2f)\n", compare, tolerance)
			return 0
		}
		fmt.Fprintf(os.Stderr, "REGRESSIONS vs %s (tolerance %.2f):\n", compare, tolerance)
		for _, r := range regs {
			fmt.Fprintf(os.Stderr, "  %-36s %.4g -> %.4g (%.2fx)\n", r.Metric, r.Old, r.New, r.Ratio)
		}
		return 1
	}
	return 0
}

func main() {
	exp := flag.String("experiment", "all", "which experiment to run")
	seed := flag.Int64("seed", experiments.DefaultSeed, "corpus seed")
	suite := flag.Bool("suite", false, "run the serving performance suite instead of the paper experiments")
	scale := flag.Float64("scale", 1.0, "corpus scale for -suite; 1.0 is the full seed corpus")
	duration := flag.Duration("duration", 3*time.Second, "loadgen serving phase length for -suite")
	out := flag.String("out", "", "also write the -suite JSON result to this file")
	compare := flag.String("compare", "", "gate the -suite result against this older BENCH_N.json; regressions exit nonzero")
	tolerance := flag.Float64("tolerance", 0.5, "allowed growth ratio for -compare (0.5 allows 1.5x)")
	flag.Parse()

	if *suite {
		os.Exit(runSuite(*seed, *scale, *duration, *out, *compare, *tolerance))
	}

	w := os.Stdout
	needEnv := map[string]bool{
		"all": true, "figure7": true, "figure8": true, "figure14": true,
		"figure15": true, "sensitivity": true, "appendixJ": true,
		"appendixI": true, "extraction": true,
	}
	var env *experiments.Env
	if needEnv[*exp] {
		fmt.Fprintln(w, "generating web corpus and shared artifacts...")
		env = experiments.NewEnv(*seed)
	}

	run := func(name string) {
		switch name {
		case "figure7", "figure8":
			results := experiments.Figure7(w, env, *seed)
			experiments.Figure8(w, results)
		case "figure9":
			experiments.Figure9(w, *seed)
		case "figure10":
			experiments.Figure10(w, *seed)
		case "figure11":
			experiments.Figure11(w, *seed)
		case "figure14":
			results := experiments.Figure7(w, env, *seed)
			experiments.Figure14(w, env, results)
		case "figure15":
			experiments.Figure15(w, env)
		case "sensitivity":
			experiments.Sensitivity(w, env)
		case "appendixJ":
			experiments.AppendixJ(w, env, 200)
		case "appendixI":
			experiments.AppendixI(w, env)
		case "extraction":
			experiments.ExtractionStats(w, env)
		default:
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", name)
			os.Exit(2)
		}
	}
	if *exp == "all" {
		results := experiments.Figure7(w, env, *seed)
		experiments.Figure8(w, results)
		experiments.Figure14(w, env, results)
		experiments.ExtractionStats(w, env)
		experiments.Figure15(w, env)
		experiments.Figure9(w, *seed)
		experiments.Figure10(w, *seed)
		experiments.Figure11(w, *seed)
		experiments.AppendixJ(w, env, 200)
		experiments.AppendixI(w, env)
		experiments.Sensitivity(w, env)
		return
	}
	run(*exp)
}
