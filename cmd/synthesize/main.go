// Command synthesize runs the full mapping-synthesis pipeline over a
// generated corpus and prints the most popular synthesized mappings — the
// curation view of Section 4.3 of the paper.
//
// Usage:
//
//	synthesize [-profile web|enterprise] [-seed N] [-corpus corpus.json]
//	           [-top K] [-min-domains D] [-workers N] [-v]
//	           [-cpuprofile FILE] [-memprofile FILE] [-snapshot FILE]
//	           [-format v1|v2]
//
// By default the corpus is generated in-process; -corpus instead reads a
// JSON corpus exported by cmd/corpusgen, making the full artifact loop
// corpusgen -> synthesize -> serve -> loadgen explicit.
//
// It drives the staged internal/pipeline engine directly: -workers bounds
// the shared worker pool across every stage, per-stage progress is printed
// as stages complete, and Ctrl-C (SIGINT/SIGTERM) cancels the run cleanly
// mid-stage. With -v a per-stage timing/count table is printed at the end.
//
// With -snapshot, the synthesized mappings are persisted as a binary
// snapshot that cmd/serve loads to answer queries without re-running the
// pipeline — the index-once/serve-many split. -format picks the snapshot
// layout: v2 (the default) is the page-aligned, mmap-able format cmd/serve
// activates in O(1); v1 is the compact varint stream, kept as an escape
// hatch for older readers.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"syscall"
	"text/tabwriter"

	"mapsynth/internal/corpusgen"
	"mapsynth/internal/corpusio"
	"mapsynth/internal/curation"
	"mapsynth/internal/pipeline"
	"mapsynth/internal/snapshot"
	"mapsynth/internal/table"
)

// main delegates to run so deferred cleanup (CPU profile flush, file
// closes) executes before the process exits with run's status code.
func main() {
	os.Exit(run())
}

func run() int {
	profile := flag.String("profile", "web", "corpus profile: web or enterprise")
	seed := flag.Int64("seed", 42, "corpus generation seed")
	top := flag.Int("top", 20, "number of top mappings to print")
	minDomains := flag.Int("min-domains", 2, "curation filter: min contributing domains")
	workers := flag.Int("workers", 0, "worker pool size for all pipeline stages; 0 = GOMAXPROCS")
	verbose := flag.Bool("v", false, "print the per-stage timing/count table after the run")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the pipeline run to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile (after the run, post-GC) to this file")
	exportTSV := flag.String("o", "", "export synthesized mappings to this TSV file")
	report := flag.String("report", "", "write a curation report (TSV) to this file")
	snapPath := flag.String("snapshot", "", "write a binary snapshot for cmd/serve to this file")
	format := flag.String("format", "v2", "snapshot format for -snapshot: v2 (mmap-able, O(1) activation) or v1 (compact varint stream)")
	corpusFile := flag.String("corpus", "", "read the corpus from this JSON file (written by cmd/corpusgen) instead of generating; -profile/-seed are then ignored")
	flag.Parse()

	var tables []*table.Table
	if *corpusFile != "" {
		f, err := os.Open(*corpusFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "synthesize: %v\n", err)
			return 2
		}
		tables, err = corpusio.ReadTablesJSON(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "synthesize: %v\n", err)
			return 2
		}
		fmt.Printf("corpus: %d tables (from %s)\n", len(tables), *corpusFile)
	} else {
		var corpus *corpusgen.Corpus
		switch *profile {
		case "web":
			corpus = corpusgen.GenerateWeb(corpusgen.Options{Seed: *seed})
		case "enterprise":
			corpus = corpusgen.GenerateEnterprise(corpusgen.Options{Seed: *seed})
		default:
			fmt.Fprintf(os.Stderr, "unknown profile %q\n", *profile)
			return 2
		}
		tables = corpus.Tables
		fmt.Printf("corpus: %d tables (%s profile, seed %d)\n", len(tables), *profile, *seed)
	}

	cfg := pipeline.DefaultConfig()
	cfg.MinDomains = *minDomains
	cfg.Workers = *workers

	// Ctrl-C / SIGTERM cancels the pipeline mid-stage; the engine drains
	// its workers and returns context.Canceled.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
			fmt.Printf("wrote CPU profile to %s\n", *cpuprofile)
		}()
	}
	if *memprofile != "" {
		// Deferred so the profile reflects what the run left live (indexes,
		// mappings), not transient pipeline allocations; runtime.GC first so
		// freed-but-uncollected garbage does not inflate it.
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
			f.Close()
			fmt.Printf("wrote heap profile to %s\n", *memprofile)
		}()
	}

	eng := pipeline.New(cfg)
	eng.SetInstrumentation(pipeline.Instrumentation{
		OnStageEnd: func(st pipeline.StageStats) {
			fmt.Printf("stage %-9s %6d items -> %6d out  %10v  (peak %d workers)\n",
				st.Name, st.Items, st.Produced, st.Duration.Round(1e5), st.PeakWorkers)
		},
	})
	res, err := eng.Run(ctx, tables)
	// Restore default signal handling for the output phase: once the
	// pipeline is done, Ctrl-C should kill the process normally instead of
	// feeding an already-consumed context.
	stop()
	if err != nil {
		if errors.Is(err, context.Canceled) {
			fmt.Fprintln(os.Stderr, "synthesize: cancelled, bye")
			return 130
		}
		fmt.Fprintf(os.Stderr, "synthesize: %v\n", err)
		return 1
	}

	s := res.ExtractStats
	fmt.Printf("extraction: %d candidates from %d raw column pairs (%.1f%% filtered)\n",
		s.Candidates, s.PairsRaw, s.FilterRate()*100)
	fmt.Printf("synthesis: %d edges, %d components, %d partitions, %d tables removed by conflict resolution\n",
		res.Edges, res.Components, res.Partitions, res.TablesRemoved)
	fmt.Printf("pipeline: total=%v over %d-worker pool\n",
		res.Timings.Total.Round(1e6), eng.Pool().Workers())
	fmt.Printf("\ntop %d synthesized mappings by popularity:\n", *top)
	for i, m := range res.Mappings {
		if i >= *top {
			break
		}
		example := ""
		if len(m.Pairs) > 0 {
			example = fmt.Sprintf("e.g. (%s -> %s)", m.Pairs[0].L, m.Pairs[0].R)
		}
		ds := m.Directions()
		kind := "N:1"
		if ds.RightToLeft > 0.95 {
			kind = "1:1"
		}
		fmt.Printf("  #%02d %4d pairs %3d tables %3d domains %s %s\n",
			i+1, m.Size(), m.NumTables(), m.NumDomains(), kind, example)
	}

	if *verbose {
		fmt.Println("\nper-stage breakdown:")
		tw := tabwriter.NewWriter(os.Stdout, 2, 8, 2, ' ', 0)
		fmt.Fprintln(tw, "  stage\titems\tproduced\tduration\tpeak workers")
		for _, st := range res.Stages {
			fmt.Fprintf(tw, "  %s\t%d\t%d\t%v\t%d\n",
				st.Name, st.Items, st.Produced, st.Duration.Round(1e5), st.PeakWorkers)
		}
		fmt.Fprintf(tw, "  total\t\t%d mappings\t%v\t\n",
			len(res.Mappings), res.Timings.Total.Round(1e5))
		tw.Flush()
	}

	if *exportTSV != "" {
		f, err := os.Create(*exportTSV)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		if err := corpusio.WriteMappingsTSV(f, res.Mappings); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		f.Close()
		fmt.Printf("\nexported %d mappings to %s\n", len(res.Mappings), *exportTSV)
	}
	if *snapPath != "" {
		var werr error
		switch *format {
		case "v2":
			werr = snapshot.WriteFileV2(*snapPath, res.Mappings)
		case "v1":
			werr = snapshot.WriteFile(*snapPath, res.Mappings)
		default:
			fmt.Fprintf(os.Stderr, "synthesize: unknown -format %q (want v1 or v2)\n", *format)
			return 2
		}
		if werr != nil {
			fmt.Fprintln(os.Stderr, werr)
			return 1
		}
		info, _ := os.Stat(*snapPath)
		size := int64(0)
		if info != nil {
			size = info.Size()
		}
		fmt.Printf("wrote %s snapshot of %d mappings to %s (%d bytes)\n",
			*format, len(res.Mappings), *snapPath, size)
	}
	if *report != "" {
		f, err := os.Create(*report)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		if err := curation.Report(f, res.Mappings, *top); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		f.Close()
		fmt.Printf("wrote curation report to %s\n", *report)
	}
	return 0
}
