// Command synthesize runs the full mapping-synthesis pipeline over a
// generated corpus and prints the most popular synthesized mappings — the
// curation view of Section 4.3 of the paper.
//
// Usage:
//
//	synthesize [-profile web|enterprise] [-seed N] [-top K] [-min-domains D] [-snapshot FILE]
//
// With -snapshot, the synthesized mappings are persisted as a binary
// snapshot that cmd/serve loads to answer queries without re-running the
// pipeline — the index-once/serve-many split.
package main

import (
	"flag"
	"fmt"
	"os"

	"mapsynth/internal/core"
	"mapsynth/internal/corpusgen"
	"mapsynth/internal/corpusio"
	"mapsynth/internal/curation"
	"mapsynth/internal/snapshot"
)

func main() {
	profile := flag.String("profile", "web", "corpus profile: web or enterprise")
	seed := flag.Int64("seed", 42, "corpus generation seed")
	top := flag.Int("top", 20, "number of top mappings to print")
	minDomains := flag.Int("min-domains", 2, "curation filter: min contributing domains")
	exportTSV := flag.String("o", "", "export synthesized mappings to this TSV file")
	report := flag.String("report", "", "write a curation report (TSV) to this file")
	snapPath := flag.String("snapshot", "", "write a binary snapshot for cmd/serve to this file")
	flag.Parse()

	var corpus *corpusgen.Corpus
	switch *profile {
	case "web":
		corpus = corpusgen.GenerateWeb(corpusgen.Options{Seed: *seed})
	case "enterprise":
		corpus = corpusgen.GenerateEnterprise(corpusgen.Options{Seed: *seed})
	default:
		fmt.Fprintf(os.Stderr, "unknown profile %q\n", *profile)
		os.Exit(2)
	}
	fmt.Printf("corpus: %d tables (%s profile, seed %d)\n", len(corpus.Tables), *profile, *seed)

	cfg := core.DefaultConfig()
	cfg.MinDomains = *minDomains
	res := core.New(cfg).Synthesize(corpus.Tables)

	s := res.ExtractStats
	fmt.Printf("extraction: %d candidates from %d raw column pairs (%.1f%% filtered)\n",
		s.Candidates, s.PairsRaw, s.FilterRate()*100)
	fmt.Printf("synthesis: %d edges, %d partitions, %d tables removed by conflict resolution\n",
		res.Edges, res.Partitions, res.TablesRemoved)
	fmt.Printf("pipeline: index=%v extract=%v graph=%v partition=%v resolve=%v total=%v\n",
		res.Timings.Index.Round(1e6), res.Timings.Extract.Round(1e6),
		res.Timings.Graph.Round(1e6), res.Timings.Partition.Round(1e6),
		res.Timings.Resolve.Round(1e6), res.Timings.Total.Round(1e6))
	fmt.Printf("\ntop %d synthesized mappings by popularity:\n", *top)
	for i, m := range res.Mappings {
		if i >= *top {
			break
		}
		example := ""
		if len(m.Pairs) > 0 {
			example = fmt.Sprintf("e.g. (%s -> %s)", m.Pairs[0].L, m.Pairs[0].R)
		}
		ds := m.Directions()
		kind := "N:1"
		if ds.RightToLeft > 0.95 {
			kind = "1:1"
		}
		fmt.Printf("  #%02d %4d pairs %3d tables %3d domains %s %s\n",
			i+1, m.Size(), m.NumTables(), m.NumDomains(), kind, example)
	}

	if *exportTSV != "" {
		f, err := os.Create(*exportTSV)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := corpusio.WriteMappingsTSV(f, res.Mappings); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		f.Close()
		fmt.Printf("\nexported %d mappings to %s\n", len(res.Mappings), *exportTSV)
	}
	if *snapPath != "" {
		if err := snapshot.WriteFile(*snapPath, res.Mappings); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		info, _ := os.Stat(*snapPath)
		size := int64(0)
		if info != nil {
			size = info.Size()
		}
		fmt.Printf("wrote snapshot of %d mappings to %s (%d bytes)\n",
			len(res.Mappings), *snapPath, size)
	}
	if *report != "" {
		f, err := os.Create(*report)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := curation.Report(f, res.Mappings, *top); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		f.Close()
		fmt.Printf("wrote curation report to %s\n", *report)
	}
}
