// Command serve is the long-running mapping service: it loads a snapshot
// written by `synthesize -snapshot` into hash-sharded in-memory indexes and
// serves the paper's end-user applications over HTTP.
//
// Usage:
//
//	serve -snapshot out.snap [-corpus name=path ...] [-addr :8080]
//	      [-shards N] [-cache 4096] [-history 4]
//	      [-batch-requests 32] [-batch-rows 256] [-batch-write-timeout 30s]
//	      [-tenants interactive:4,bulk:1:50:10,*:1:100]
//
// One process serves many named corpora: -snapshot loads the "default"
// corpus and each repeatable -corpus name=path flag loads a further one.
// Every application endpoint exists corpus-scoped under
// /v1/corpora/{name}/...; the unscoped /v1/... paths answer
// byte-identically for the default corpus (and each also answers at its
// legacy unversioned path plus a Deprecation header):
//
//	GET  /v1/lookup?key=K       single-key lookup with provenance (LRU-cached)
//	POST /v1/autofill           {"column":[...], "examples":[{"left","right"}], "min_coverage":0.8, "top_k":0}
//	POST /v1/autocorrect        {"column":[...], "min_each":2, "min_coverage":0.8, "top_k":0}
//	POST /v1/autojoin           {"keys_a":[...], "keys_b":[...], "min_coverage":0.8, "top_k":0}
//	POST /v1/batch/autofill     NDJSON stream: one /v1/autofill body per line (+optional "id")
//	POST /v1/batch/autocorrect  NDJSON stream: one /v1/autocorrect body per line
//	POST /v1/batch/autojoin     NDJSON stream: one /v1/autojoin body per line
//	GET  /v1/healthz            liveness + per-corpus readiness metadata
//	GET  /v1/stats              per-corpus request counts, latency percentiles, cache + shared batch limiter
//	POST /v1/reload             {"snapshot":"path"} — atomic snapshot hot reload (default corpus)
//
// Corpus lifecycle (see docs/api.md#corpora):
//
//	GET    /v1/corpora                  list corpora with version metadata
//	PUT    /v1/corpora/{name}           load-or-replace from {"snapshot":"path"} or an uploaded snapshot body
//	DELETE /v1/corpora/{name}           remove (default protected)
//	POST   /v1/corpora/{name}/activate  {"version":N} — re-activate a prior version
//	POST   /v1/corpora/{name}/rollback  undo the last load/activate
//
// Errors on every path are the structured envelope
// {"error":{"code":"...","message":"...","retry_after_ms":N,"request_id":"..."}}
// with machine-readable codes; every request gets an X-Request-ID. Go
// clients should use mapsynth/pkg/client instead of raw HTTP.
//
// The /v1/batch/* endpoints answer NDJSON, one result line per input as it
// completes, and are guarded by an admission limiter shared across all
// corpora: -batch-requests bounds concurrent batch requests (beyond it:
// 429 + Retry-After), -batch-rows bounds concurrently computing rows
// across all batches (beyond it the server stops reading request bodies —
// TCP backpressure). See docs/api.md.
//
// Multi-tenant QoS: requests carry an optional X-Tenant header (absent =
// "default"). -tenants assigns each tenant a token-bucket rate limit
// (over quota: 429 quota_exhausted + Retry-After) and a weight; a
// weighted-fair queue arbitrates the shared -batch-rows compute slots, in
// which interactive single-query requests strictly preempt batch rows and
// tenants within a band share slots in proportion to their weights. Each
// entry is name[:weight[:rate[:burst]]]; "*" is the template applied to
// tenants first seen at request time. Per-tenant counters and latency
// appear in /v1/stats and /v1/metrics.
//
// Live ingestion (see docs/ingestion.md): -ingest-dir enables
// POST /v1/corpora/{name}/tables — an NDJSON stream of tables appended to a
// per-corpus durable log under that directory and synthesized incrementally
// into new snapshot versions (only dirty compatibility-graph components
// re-run; the result is byte-identical to an offline rebuild). With
// -rebuild-profile set, ingested tables extend that generated corpus;
// otherwise each corpus starts from the ingested tables alone. Replicas
// catch up with delta snapshots: GET /v1/corpora/{name}/snapshot?since=V
// (or ?since_crc=HEX) ships only changed sections, falling back to the
// full image when the base is unknown.
//
// Observability (see docs/observability.md):
//
//	GET /v1/metrics             Prometheus text exposition: per-corpus request
//	                            counts and latency histograms, error counts by
//	                            envelope code, batch limiter, registry, worker
//	                            pool, rebuild pipeline stages, Go runtime
//
// Every request emits one structured access-log line (log/slog) with its
// X-Request-ID; -log-format selects json or text, -log-level the threshold.
// -pprof-addr exposes net/http/pprof plus a second /metrics on a separate
// admin listener (off by default — keep it off public interfaces).
//
// SIGHUP hot-reloads every corpus's current snapshot path; SIGINT/SIGTERM
// drain in-flight requests and exit.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"mapsynth/internal/cluster"
	"mapsynth/internal/corpusgen"
	"mapsynth/internal/mapping"
	"mapsynth/internal/metrics"
	"mapsynth/internal/pipeline"
	"mapsynth/internal/qos"
	"mapsynth/internal/serve"
	"mapsynth/internal/snapshot"
	"mapsynth/internal/table"
)

// newLogger builds the process logger from the CLI's format/level choice.
func newLogger(format, level string) (*slog.Logger, error) {
	var lvl slog.Level
	switch strings.ToLower(level) {
	case "debug":
		lvl = slog.LevelDebug
	case "info":
		lvl = slog.LevelInfo
	case "warn":
		lvl = slog.LevelWarn
	case "error":
		lvl = slog.LevelError
	default:
		return nil, fmt.Errorf("unknown -log-level %q (want debug, info, warn or error)", level)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	switch format {
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
	default:
		return nil, fmt.Errorf("unknown -log-format %q (want json or text)", format)
	}
}

// serveAdmin runs the opt-in admin listener: net/http/pprof for live
// profiling plus the same metrics registry at /metrics, so an operator can
// scrape and profile without touching the public query surface.
func serveAdmin(addr string, reg *metrics.Registry, logger *slog.Logger) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/metrics", reg.Handler())
	logger.Info("admin listener up", "addr", addr)
	if err := http.ListenAndServe(addr, mux); err != nil {
		logger.Error("admin listener failed", "addr", addr, "error", err)
	}
}

// runCoordinator is -peers mode: the process serves no data itself;
// instead it probes the named peers and fronts them as one logical
// service (see internal/cluster and docs/cluster.md).
func runCoordinator(peersSpec string, numShards int, addr string, probeInterval, peerTimeout time.Duration, logger *slog.Logger) {
	peers, err := cluster.ParsePeers(peersSpec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "serve: -peers: %v\n", err)
		os.Exit(2)
	}
	topo, err := cluster.NewTopology(peers, numShards)
	if err != nil {
		fmt.Fprintf(os.Stderr, "serve: -peers: %v\n", err)
		os.Exit(2)
	}
	co, err := cluster.New(topo, cluster.Options{
		ProbeInterval: probeInterval,
		PeerTimeout:   peerTimeout,
		Logger:        logger,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "serve: %v\n", err)
		os.Exit(2)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	co.Start(ctx)
	for _, p := range topo.Peers {
		fmt.Printf("serve: peer %s at %s (shards %v)\n", p.Name, p.Addr, p.Shards)
	}
	fmt.Printf("serve: coordinating %d peers on %s\n", len(topo.Peers), addr)
	hs := &http.Server{Addr: addr, Handler: co.Handler()}
	done := make(chan error, 1)
	go func() { done <- hs.ListenAndServe() }()
	select {
	case err := <-done:
		fmt.Fprintf(os.Stderr, "serve: %v\n", err)
		os.Exit(1)
	case <-ctx.Done():
		shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = hs.Shutdown(shutCtx)
		fmt.Println("serve: coordinator drained, bye")
	}
}

func main() {
	snapPath := flag.String("snapshot", "", "snapshot file written by synthesize -snapshot, served as the default corpus (required)")
	corpora := make(map[string]string)
	flag.Func("corpus", "additional corpus as name=path; repeatable", func(v string) error {
		name, path, ok := strings.Cut(v, "=")
		if !ok || name == "" || path == "" {
			return fmt.Errorf("want name=path, got %q", v)
		}
		if _, dup := corpora[name]; dup {
			return fmt.Errorf("corpus %q given twice", name)
		}
		corpora[name] = path
		return nil
	})
	addr := flag.String("addr", ":8080", "listen address")
	shards := flag.Int("shards", 0, "index shards; 0 = GOMAXPROCS")
	cacheSize := flag.Int("cache", 4096, "lookup cache entries per corpus; 0 disables")
	history := flag.Int("history", 4, "rollback ring depth: prior snapshot versions kept activatable per corpus")
	batchRequests := flag.Int("batch-requests", 32, "max concurrent /batch/* requests; beyond it 429")
	batchRows := flag.Int("batch-rows", 256, "max concurrently computing batch rows across all requests")
	batchWriteTimeout := flag.Duration("batch-write-timeout", 30*time.Second, "abandon a batch stream when the client reads nothing for this long")
	tenantsFlag := flag.String("tenants", "", "per-tenant QoS specs as name[:weight[:rate[:burst]]] comma-separated; \"*\" is the template for unlisted tenants (e.g. 'interactive:4,bulk:1:50:10,*:1:100'); @file reads the specs from a file SIGHUP re-reads; empty = every tenant unlimited, weight 1")
	maxUploadBytes := flag.Int64("max-upload-bytes", 0, "max PUT /v1/corpora/{name} body bytes (snapshot uploads); beyond it 413 payload_too_large; 0 = the batch body bound")
	madviseFlag := flag.String("madvise", "", "page-cache hint applied to mmapped v2 snapshots: willneed (preload: snapshot fits the cache) or random (no read-ahead: snapshot dwarfs it); empty = none")
	peersFlag := flag.String("peers", "", "coordinator mode: comma-separated peers as name=addr[=s0+s1+...] (shard list empty = full replica); the process serves scatter-gather routing instead of data")
	clusterShards := flag.Int("cluster-shards", 0, "coordinator mode: global shard count partial peers are judged against; 0 = inferred from the peer shard lists")
	probeInterval := flag.Duration("probe-interval", 2*time.Second, "coordinator mode: peer health probe period")
	peerTimeout := flag.Duration("peer-timeout", 10*time.Second, "coordinator mode: per-peer deadline on proxied and scattered calls")
	rebuildProfile := flag.String("rebuild-profile", "", "enable POST /reload {\"rebuild\":true}: corpus profile (web or enterprise) to re-synthesize from")
	rebuildSeed := flag.Int64("rebuild-seed", 42, "corpus seed for -rebuild-profile")
	rebuildWorkers := flag.Int("rebuild-workers", 0, "pipeline workers for rebuilds; 0 = GOMAXPROCS")
	rebuildMinDomains := flag.Int("rebuild-min-domains", 2, "curation filter for rebuilds: min contributing domains (match the synthesize -min-domains the snapshot was built with)")
	ingestDir := flag.String("ingest-dir", "", "directory for per-corpus ingest append logs; enables POST /v1/corpora/{name}/tables (live ingestion with incremental synthesis); empty disables")
	logFormat := flag.String("log-format", "text", "structured log format: json or text")
	logLevel := flag.String("log-level", "info", "minimum log level: debug, info, warn or error")
	pprofAddr := flag.String("pprof-addr", "", "admin listen address for net/http/pprof and /metrics (e.g. localhost:6060); empty disables")
	flag.Parse()

	logger, err := newLogger(*logFormat, *logLevel)
	if err != nil {
		fmt.Fprintf(os.Stderr, "serve: %v\n", err)
		os.Exit(2)
	}
	if *peersFlag != "" {
		runCoordinator(*peersFlag, *clusterShards, *addr, *probeInterval, *peerTimeout, logger)
		return
	}
	if *snapPath == "" {
		fmt.Fprintln(os.Stderr, "serve: -snapshot is required")
		flag.Usage()
		os.Exit(2)
	}
	// -tenants @file: read the spec table from a file, and re-read it on
	// SIGHUP — quota changes without a restart (POST /v1/tenants is the
	// API-driven equivalent).
	var tenantSource func() ([]qos.Spec, error)
	tenantSpecText := *tenantsFlag
	if file, ok := strings.CutPrefix(*tenantsFlag, "@"); ok {
		tenantSource = func() ([]qos.Spec, error) {
			data, err := os.ReadFile(file)
			if err != nil {
				return nil, err
			}
			// One spec per line, blank lines and #-comments allowed; a
			// line may itself hold the flag's comma-separated form.
			var entries []string
			for _, line := range strings.Split(string(data), "\n") {
				if i := strings.IndexByte(line, '#'); i >= 0 {
					line = line[:i]
				}
				if line = strings.TrimSpace(line); line != "" {
					entries = append(entries, line)
				}
			}
			return qos.ParseSpecs(strings.Join(entries, ","))
		}
		specs, err := tenantSource()
		if err != nil {
			fmt.Fprintf(os.Stderr, "serve: -tenants %s: %v\n", *tenantsFlag, err)
			os.Exit(2)
		}
		tenantSpecText = qos.FormatSpecs(specs)
	}
	tenantSpecs, err := qos.ParseSpecs(tenantSpecText)
	if err != nil {
		fmt.Fprintf(os.Stderr, "serve: -tenants: %v\n", err)
		os.Exit(2)
	}
	madvise, err := snapshot.ParseAdvice(*madviseFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "serve: -madvise: %v\n", err)
		os.Exit(2)
	}
	// One registry for everything: the server's own collectors register in
	// serve.New, the rebuild pipeline's stage metrics here — so a rebuild's
	// per-stage durations show up on the same /v1/metrics page as the
	// requests it answers.
	reg := metrics.New()
	pipelineInst := pipeline.MetricsInstrumentation(reg)
	var rebuild func(ctx context.Context) ([]*mapping.Mapping, error)
	switch *rebuildProfile {
	case "":
	case "web", "enterprise":
		profile, seed, workers, minDomains := *rebuildProfile, *rebuildSeed, *rebuildWorkers, *rebuildMinDomains
		rebuild = func(ctx context.Context) ([]*mapping.Mapping, error) {
			var corpus *corpusgen.Corpus
			if profile == "web" {
				corpus = corpusgen.GenerateWeb(corpusgen.Options{Seed: seed})
			} else {
				corpus = corpusgen.GenerateEnterprise(corpusgen.Options{Seed: seed})
			}
			cfg := pipeline.DefaultConfig()
			cfg.MinDomains = minDomains
			cfg.Workers = workers
			eng := pipeline.New(cfg)
			eng.SetInstrumentation(pipelineInst)
			res, err := eng.Run(ctx, corpus.Tables)
			if err != nil {
				return nil, err
			}
			return res.Mappings, nil
		}
	default:
		fmt.Fprintf(os.Stderr, "serve: unknown -rebuild-profile %q\n", *rebuildProfile)
		os.Exit(2)
	}
	// Live ingestion: the synthesis base for an ingesting corpus is the
	// generated rebuild corpus when a profile is configured (ingested
	// tables extend it), or empty otherwise (the corpus is built from
	// ingested tables alone). The incremental engine's synthesis
	// parameters mirror the rebuild flags so an ingest-published version
	// is byte-identical to what a full rebuild over the same tables
	// would produce.
	var ingestBase func(ctx context.Context, corpus string) ([]*table.Table, error)
	var ingestConfig *pipeline.Config
	if *ingestDir != "" {
		if err := os.MkdirAll(*ingestDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "serve: -ingest-dir: %v\n", err)
			os.Exit(2)
		}
		cfg := pipeline.DefaultConfig()
		cfg.MinDomains = *rebuildMinDomains
		cfg.Workers = *rebuildWorkers
		ingestConfig = &cfg
		if *rebuildProfile != "" {
			profile, seed := *rebuildProfile, *rebuildSeed
			ingestBase = func(ctx context.Context, corpus string) ([]*table.Table, error) {
				if profile == "web" {
					return corpusgen.GenerateWeb(corpusgen.Options{Seed: seed}).Tables, nil
				}
				return corpusgen.GenerateEnterprise(corpusgen.Options{Seed: seed}).Tables, nil
			}
		}
	}
	srv, err := serve.New(serve.Options{
		SnapshotPath:      *snapPath,
		Corpora:           corpora,
		Shards:            *shards,
		CacheSize:         *cacheSize,
		HistoryDepth:      *history,
		MaxBatchRequests:  *batchRequests,
		MaxBatchRows:      *batchRows,
		BatchWriteTimeout: *batchWriteTimeout,
		Tenants:           tenantSpecs,
		TenantSource:      tenantSource,
		MaxUploadBytes:    *maxUploadBytes,
		Madvise:           madvise,
		Rebuild:           rebuild,
		IngestDir:         *ingestDir,
		IngestBase:        ingestBase,
		IngestConfig:      ingestConfig,
		Metrics:           reg,
		Logger:            logger,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "serve: loading snapshots: %v\n", err)
		os.Exit(1)
	}
	for _, name := range srv.CorpusNames() {
		st := srv.CorpusState(name)
		fmt.Printf("serve: corpus %s: loaded %s: %d mappings across %d shards\n",
			name, st.Path, st.NumMappings(), st.Index.NumShards())
	}
	fmt.Printf("serve: listening on %s (SIGHUP reloads every corpus)\n", *addr)
	if *pprofAddr != "" {
		go serveAdmin(*pprofAddr, reg, logger)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := srv.Run(ctx, *addr); err != nil {
		fmt.Fprintf(os.Stderr, "serve: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("serve: drained, bye")
}
