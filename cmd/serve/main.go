// Command serve is the long-running mapping service: it loads a snapshot
// written by `synthesize -snapshot` into hash-sharded in-memory indexes and
// serves the paper's end-user applications over HTTP.
//
// Usage:
//
//	serve -snapshot out.snap [-addr :8080] [-shards N] [-cache 4096]
//	      [-batch-requests 32] [-batch-rows 256] [-batch-write-timeout 30s]
//
// Endpoints (v1 canonical paths; each also answers at its legacy
// unversioned path, byte-identically, plus a Deprecation header):
//
//	GET  /v1/lookup?key=K       single-key lookup with provenance (LRU-cached)
//	POST /v1/autofill           {"column":[...], "examples":[{"left","right"}], "min_coverage":0.8, "top_k":0}
//	POST /v1/autocorrect        {"column":[...], "min_each":2, "min_coverage":0.8, "top_k":0}
//	POST /v1/autojoin           {"keys_a":[...], "keys_b":[...], "min_coverage":0.8, "top_k":0}
//	POST /v1/batch/autofill     NDJSON stream: one /v1/autofill body per line (+optional "id")
//	POST /v1/batch/autocorrect  NDJSON stream: one /v1/autocorrect body per line
//	POST /v1/batch/autojoin     NDJSON stream: one /v1/autojoin body per line
//	GET  /v1/healthz            liveness + loaded snapshot metadata
//	GET  /v1/stats              request counts, latency percentiles, cache + batch limiter
//	POST /v1/reload             {"snapshot":"path"} — atomic snapshot hot reload
//
// Errors on every path are the structured envelope
// {"error":{"code":"...","message":"...","retry_after_ms":N,"request_id":"..."}}
// with machine-readable codes; every request gets an X-Request-ID. Go
// clients should use mapsynth/pkg/client instead of raw HTTP.
//
// The /v1/batch/* endpoints answer NDJSON, one result line per input as it
// completes, and are guarded by an admission limiter: -batch-requests bounds
// concurrent batch requests (beyond it: 429 + Retry-After), -batch-rows
// bounds concurrently computing rows across all batches (beyond it the
// server stops reading request bodies — TCP backpressure). See docs/api.md.
//
// SIGHUP also hot-reloads the current snapshot path; SIGINT/SIGTERM drain
// in-flight requests and exit.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"mapsynth/internal/corpusgen"
	"mapsynth/internal/mapping"
	"mapsynth/internal/pipeline"
	"mapsynth/internal/serve"
)

func main() {
	snapPath := flag.String("snapshot", "", "snapshot file written by synthesize -snapshot (required)")
	addr := flag.String("addr", ":8080", "listen address")
	shards := flag.Int("shards", 0, "index shards; 0 = GOMAXPROCS")
	cacheSize := flag.Int("cache", 4096, "lookup cache entries; 0 disables")
	batchRequests := flag.Int("batch-requests", 32, "max concurrent /batch/* requests; beyond it 429")
	batchRows := flag.Int("batch-rows", 256, "max concurrently computing batch rows across all requests")
	batchWriteTimeout := flag.Duration("batch-write-timeout", 30*time.Second, "abandon a batch stream when the client reads nothing for this long")
	rebuildProfile := flag.String("rebuild-profile", "", "enable POST /reload {\"rebuild\":true}: corpus profile (web or enterprise) to re-synthesize from")
	rebuildSeed := flag.Int64("rebuild-seed", 42, "corpus seed for -rebuild-profile")
	rebuildWorkers := flag.Int("rebuild-workers", 0, "pipeline workers for rebuilds; 0 = GOMAXPROCS")
	rebuildMinDomains := flag.Int("rebuild-min-domains", 2, "curation filter for rebuilds: min contributing domains (match the synthesize -min-domains the snapshot was built with)")
	flag.Parse()

	if *snapPath == "" {
		fmt.Fprintln(os.Stderr, "serve: -snapshot is required")
		flag.Usage()
		os.Exit(2)
	}
	var rebuild func(ctx context.Context) ([]*mapping.Mapping, error)
	switch *rebuildProfile {
	case "":
	case "web", "enterprise":
		profile, seed, workers, minDomains := *rebuildProfile, *rebuildSeed, *rebuildWorkers, *rebuildMinDomains
		rebuild = func(ctx context.Context) ([]*mapping.Mapping, error) {
			var corpus *corpusgen.Corpus
			if profile == "web" {
				corpus = corpusgen.GenerateWeb(corpusgen.Options{Seed: seed})
			} else {
				corpus = corpusgen.GenerateEnterprise(corpusgen.Options{Seed: seed})
			}
			cfg := pipeline.DefaultConfig()
			cfg.MinDomains = minDomains
			cfg.Workers = workers
			res, err := pipeline.New(cfg).Run(ctx, corpus.Tables)
			if err != nil {
				return nil, err
			}
			return res.Mappings, nil
		}
	default:
		fmt.Fprintf(os.Stderr, "serve: unknown -rebuild-profile %q\n", *rebuildProfile)
		os.Exit(2)
	}
	srv, err := serve.New(serve.Options{
		SnapshotPath:      *snapPath,
		Shards:            *shards,
		CacheSize:         *cacheSize,
		MaxBatchRequests:  *batchRequests,
		MaxBatchRows:      *batchRows,
		BatchWriteTimeout: *batchWriteTimeout,
		Rebuild:           rebuild,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "serve: loading snapshot: %v\n", err)
		os.Exit(1)
	}
	st := srv.State()
	fmt.Printf("serve: loaded %s: %d mappings across %d shards\n",
		st.Path, len(st.Maps), st.Index.NumShards())
	fmt.Printf("serve: listening on %s (SIGHUP reloads the snapshot)\n", *addr)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := srv.Run(ctx, *addr); err != nil {
		fmt.Fprintf(os.Stderr, "serve: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("serve: drained, bye")
}
