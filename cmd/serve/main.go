// Command serve is the long-running mapping service: it loads a snapshot
// written by `synthesize -snapshot` into hash-sharded in-memory indexes and
// serves the paper's end-user applications over HTTP.
//
// Usage:
//
//	serve -snapshot out.snap [-addr :8080] [-shards N] [-cache 4096]
//
// Endpoints:
//
//	GET  /lookup?key=K     single-key lookup with provenance (LRU-cached)
//	POST /autofill         {"column":[...], "examples":[{"left","right"}], "min_coverage":0.8}
//	POST /autocorrect      {"column":[...], "min_each":2, "min_coverage":0.8}
//	POST /autojoin         {"keys_a":[...], "keys_b":[...], "min_coverage":0.8}
//	GET  /healthz          liveness + loaded snapshot metadata
//	GET  /stats            request counts, latency percentiles, cache hit rate
//	POST /reload           {"snapshot":"path"} — atomic snapshot hot reload
//
// SIGHUP also hot-reloads the current snapshot path; SIGINT/SIGTERM drain
// in-flight requests and exit.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"mapsynth/internal/serve"
)

func main() {
	snapPath := flag.String("snapshot", "", "snapshot file written by synthesize -snapshot (required)")
	addr := flag.String("addr", ":8080", "listen address")
	shards := flag.Int("shards", 0, "index shards; 0 = GOMAXPROCS")
	cacheSize := flag.Int("cache", 4096, "lookup cache entries; 0 disables")
	flag.Parse()

	if *snapPath == "" {
		fmt.Fprintln(os.Stderr, "serve: -snapshot is required")
		flag.Usage()
		os.Exit(2)
	}
	srv, err := serve.New(serve.Options{
		SnapshotPath: *snapPath,
		Shards:       *shards,
		CacheSize:    *cacheSize,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "serve: loading snapshot: %v\n", err)
		os.Exit(1)
	}
	st := srv.State()
	fmt.Printf("serve: loaded %s: %d mappings across %d shards\n",
		st.Path, len(st.Maps), st.Index.NumShards())
	fmt.Printf("serve: listening on %s (SIGHUP reloads the snapshot)\n", *addr)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := srv.Run(ctx, *addr); err != nil {
		fmt.Fprintf(os.Stderr, "serve: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("serve: drained, bye")
}
