// Command loadgen drives a running cmd/serve with a reproducible mixed
// workload of single-column and streaming-batch requests, paced to a target
// QPS, and writes a JSON report of counts, throttling and latency
// percentiles — the measurement half of the serving layer's throughput
// claims. All traffic goes through the public Go SDK (mapsynth/pkg/client)
// with retries disabled, so every run doubles as an SDK conformance check
// and every server-issued 429 is observed and reported.
//
// Usage:
//
//	loadgen -snapshot out.snap [-addr http://localhost:8080]
//	        [-duration 10s] [-qps 0] [-concurrency 8] [-batch 16]
//	        [-mix lookup=4,autofill=2,batch-autofill=1]
//	        [-corpora default,tickers] [-tenants a:3,b:1] [-seed 1] [-out -]
//
// The snapshot is the same file the server loaded; loadgen derives its
// query columns from it so requests genuinely hit the index. Ops for -mix:
// lookup, autofill, autocorrect, autojoin, batch-autofill,
// batch-autocorrect, batch-autojoin, ingest. The ingest op (opt-in, never
// in the default mix) streams tables into POST /v1/corpora/{name}/tables —
// the server must run with -ingest-dir — so a run can measure query
// latency under concurrent live ingestion; -ingest-tables sets the tables
// per ingest request.
//
// Exit status: 0 on a clean run, 1 if any request errored (429 throttling
// is not an error — it is the server's admission control responding), 2 on
// usage mistakes.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"mapsynth/internal/loadgen"
	"mapsynth/internal/snapshot"
)

func main() {
	os.Exit(run())
}

func run() int {
	snapPath := flag.String("snapshot", "", "snapshot the server is serving; query material is derived from it (required)")
	addr := flag.String("addr", "http://localhost:8080", "base URL of the running serve instance")
	addrsFlag := flag.String("addrs", "", "comma-separated base URLs for multi-node runs; each request picks one uniformly (overrides -addr)")
	duration := flag.Duration("duration", 10*time.Second, "how long to generate load")
	qps := flag.Float64("qps", 0, "target aggregate requests/second; 0 = unpaced closed loop")
	concurrency := flag.Int("concurrency", 8, "closed-loop worker count")
	batchSize := flag.Int("batch", 16, "NDJSON lines per batch request")
	ingestTables := flag.Int("ingest-tables", 2, "tables per ingest request (the opt-in 'ingest' op of -mix)")
	mixFlag := flag.String("mix", "", "op mix as name=weight pairs, comma-separated; empty = default mix over every endpoint")
	corporaFlag := flag.String("corpora", "", "comma-separated corpus names to spread traffic over via /v1/corpora/{name} paths; empty = default corpus via unscoped paths")
	tenantsFlag := flag.String("tenants", "", "split traffic across tenants as name:share pairs, comma-separated (e.g. 'a:3,b:1'); each request carries the picked tenant's X-Tenant header; empty = no header")
	seed := flag.Int64("seed", 1, "workload randomization seed")
	out := flag.String("out", "-", "report destination; - writes to stdout")
	flag.Parse()

	if *snapPath == "" {
		fmt.Fprintln(os.Stderr, "loadgen: -snapshot is required")
		flag.Usage()
		return 2
	}
	maps, err := snapshot.ReadFile(*snapPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: reading snapshot: %v\n", err)
		return 2
	}
	wl, err := loadgen.NewWorkload(maps)
	if err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
		return 2
	}
	mix, err := parseMix(*mixFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
		return 2
	}
	tenants, err := loadgen.ParseTenantShares(*tenantsFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
		return 2
	}

	var addrs []string
	for _, a := range strings.Split(*addrsFlag, ",") {
		if a = strings.TrimSpace(a); a != "" {
			addrs = append(addrs, strings.TrimRight(a, "/"))
		}
	}
	shownAddr := *addr
	if len(addrs) > 0 {
		shownAddr = strings.Join(addrs, " ")
	}
	fmt.Fprintf(os.Stderr, "loadgen: %d mappings usable, %v against %s (qps=%g, concurrency=%d)\n",
		wl.Mappings(), *duration, shownAddr, *qps, *concurrency)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	var corpora []string
	for _, name := range strings.Split(*corporaFlag, ",") {
		if name = strings.TrimSpace(name); name != "" {
			corpora = append(corpora, name)
		}
	}

	rep, err := loadgen.Run(ctx, loadgen.Config{
		BaseURL:      strings.TrimRight(*addr, "/"),
		BaseURLs:     addrs,
		Duration:     *duration,
		TargetQPS:    *qps,
		Concurrency:  *concurrency,
		BatchSize:    *batchSize,
		IngestTables: *ingestTables,
		Mix:          mix,
		Corpora:      corpora,
		Tenants:      tenants,
		Seed:         *seed,
	}, wl)
	if err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
		return 2
	}

	w := os.Stdout
	if *out != "-" && *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
			return 2
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: writing report: %v\n", err)
		return 2
	}
	fmt.Fprintf(os.Stderr, "loadgen: %d requests, %.1f req/s achieved, %d throttled, %d errors\n",
		rep.Requests, rep.AchievedQPS, rep.Throttled, rep.Errors)
	if rep.Errors > 0 {
		return 1
	}
	return 0
}

// parseMix parses "lookup=4,autofill=2" into a weight map; empty input
// selects the default mix.
func parseMix(s string) (map[string]int, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	mix := make(map[string]int)
	for _, part := range strings.Split(s, ",") {
		name, weight, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return nil, fmt.Errorf("bad -mix entry %q (want name=weight)", part)
		}
		w, err := strconv.Atoi(weight)
		if err != nil || w < 0 {
			return nil, fmt.Errorf("bad -mix weight in %q", part)
		}
		mix[name] = w
	}
	return mix, nil
}
