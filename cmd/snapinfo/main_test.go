package main

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"mapsynth/internal/mapping"
	"mapsynth/internal/snapshot"
	"mapsynth/internal/table"
)

// TestDescribe exercises describe on all three on-disk formats — v1, v2,
// and a delta between two v2 images — plus the corruption path.
func TestDescribe(t *testing.T) {
	build := func(prefix string, n int) []*mapping.Mapping {
		states := []string{"California", "Washington", "Oregon", "Texas"}
		coded := make([]string, len(states))
		for i, s := range states {
			coded[i] = prefix + "-" + s[:2]
		}
		var maps []*mapping.Mapping
		for id := 0; id < n; id++ {
			bt := table.NewBinaryTable(id, id, fmt.Sprintf("%s%d.example", prefix, id), "s", "c", states, coded)
			maps = append(maps, mapping.Build(id, []*table.BinaryTable{bt}))
		}
		return maps
	}
	dir := t.TempDir()
	baseMaps := build("A", 3)
	targetMaps := append(build("A", 3), build("B", 1)...)

	v1 := filepath.Join(dir, "v1.snap")
	if err := snapshot.WriteFile(v1, baseMaps); err != nil {
		t.Fatal(err)
	}
	v2a, v2b := filepath.Join(dir, "a.snap"), filepath.Join(dir, "b.snap")
	if err := snapshot.WriteFileV2(v2a, baseMaps); err != nil {
		t.Fatal(err)
	}
	if err := snapshot.WriteFileV2(v2b, targetMaps); err != nil {
		t.Fatal(err)
	}
	baseData, _ := os.ReadFile(v2a)
	targetData, _ := os.ReadFile(v2b)
	delta, err := snapshot.BuildDelta(baseData, targetData, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	dpath := filepath.Join(dir, "ab.delta")
	if err := os.WriteFile(dpath, delta, 0o644); err != nil {
		t.Fatal(err)
	}

	for _, path := range []string{v1, v2a, dpath} {
		if err := describe(path, true); err != nil {
			t.Errorf("describe(%s): %v", path, err)
		}
	}

	// A flipped byte in the delta op stream must fail, not print garbage.
	bad := bytes.Clone(delta)
	bad[len(bad)/2] ^= 0xff
	bpath := filepath.Join(dir, "bad.delta")
	if err := os.WriteFile(bpath, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := describe(bpath, false); err == nil {
		t.Error("corrupted delta described without error")
	}
}
