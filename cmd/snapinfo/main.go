// Command snapinfo inspects a mapping snapshot file without serving it:
// format version, section layout, mapping/pair counts, and checksum status
// for both the compact v1 stream and the mmap-able v2 layout.
//
// Usage:
//
//	snapinfo [-verify] FILE...
//
// For a v2 file it prints the header fields and the section table (offset,
// length, CRC per section); with -verify it additionally checks the footer
// CRC, every per-section CRC, and the structural invariants (in-bounds
// references, sorted term table) — the full integrity pass that activation
// deliberately skips to stay O(1). For a v1 file it decodes the stream,
// which verifies the whole-file CRC as a side effect. For a delta file it
// prints the base/target identities (versions and CRCs), the changed v2
// sections, and the copy/literal op split; parsing a delta verifies its
// footer CRC and every literal body, so no separate -verify pass exists.
//
// Exit status is 0 when every file checks out, 1 when any file fails.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"mapsynth/internal/snapshot"
)

func main() {
	verify := flag.Bool("verify", false, "run the full integrity pass (footer CRC, per-section CRCs, structural walk) on v2 files")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: snapinfo [-verify] FILE...")
		os.Exit(2)
	}
	status := 0
	for _, path := range flag.Args() {
		if err := describe(path, *verify); err != nil {
			fmt.Fprintf(os.Stderr, "snapinfo: %s: %v\n", path, err)
			status = 1
		}
	}
	os.Exit(status)
}

// describe prints one file's snapshot metadata, dispatching on the version
// byte the same way snapshot.Load does.
func describe(path string, verify bool) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	head := make([]byte, 5)
	n, _ := f.Read(head)
	info, _ := f.Stat()
	f.Close()
	if n < 5 {
		return snapshot.ErrTruncated
	}
	if [4]byte(head[:4]) != snapshot.Magic {
		return snapshot.ErrMagic
	}

	fmt.Printf("%s:\n", path)
	fmt.Printf("  magic:    %q\n", head[:4])
	fmt.Printf("  version:  %d\n", head[4])
	if info != nil {
		fmt.Printf("  size:     %d bytes\n", info.Size())
	}

	switch head[4] {
	case snapshot.Version2:
		return describeV2(path, verify)
	case snapshot.VersionDelta:
		return describeDelta(path)
	}
	return describeV1(path)
}

// describeDelta parses a delta file and prints what it would do to its
// base: the base/target identities (version counters and whole-file CRCs),
// which v2 sections changed, and the copy/literal op split. OpenDelta
// verifies the footer CRC and every literal body before returning, so a
// successful parse is the integrity check — there is nothing further for
// -verify to add without the base snapshot at hand.
func describeDelta(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	d, err := snapshot.OpenDelta(data)
	if err != nil {
		fmt.Printf("  checksum: FAIL\n")
		return err
	}
	fmt.Printf("  kind:     delta (applies to a base snapshot, not loadable alone)\n")
	fmt.Printf("  base:     version %d, crc %08x\n", d.BaseVersion, d.BaseCRC)
	fmt.Printf("  target:   version %d, crc %08x\n", d.TargetVersion, d.TargetCRC)
	fmt.Printf("  mappings: %d base -> %d target (%d copied, %d literal)\n",
		d.BaseCount, d.TargetCount(), d.Copies(), d.Literals)
	changed := make([]string, 0, 16)
	for i := 0; i < 16; i++ {
		if d.ChangedSections&(1<<i) != 0 {
			changed = append(changed, snapshot.SectionName(i+1))
		}
	}
	fmt.Printf("  changed:  %s\n", strings.Join(changed, " "))
	fmt.Printf("  checksum: ok (footer CRC + literal bodies, verified by parse)\n")
	return nil
}

// describeV1 decodes the varint stream; Decode checks the whole-file CRC
// before parsing, so a successful decode is the integrity check.
func describeV1(path string) error {
	maps, err := snapshot.ReadFile(path)
	if err != nil {
		fmt.Printf("  checksum: FAIL\n")
		return err
	}
	pairs := 0
	for _, m := range maps {
		pairs += m.Size()
	}
	fmt.Printf("  mappings: %d\n", len(maps))
	fmt.Printf("  pairs:    %d\n", pairs)
	fmt.Printf("  checksum: ok (whole-file CRC-32, verified by decode)\n")
	return nil
}

// describeV2 opens the file the way activation does (header + section table
// validation only) and prints the section layout; the expensive CRC and
// structural checks run only under -verify.
func describeV2(path string, verify bool) error {
	h, err := snapshot.Open(path)
	if err != nil {
		fmt.Printf("  header:   FAIL\n")
		return err
	}
	defer h.Close()
	fmt.Printf("  mappings: %d\n", h.Len())
	fmt.Printf("  pairs:    %d\n", h.Pairs())
	fmt.Printf("  mapped:   %d bytes\n", h.MappedBytes())
	fmt.Printf("  sections:\n")
	for _, s := range h.Sections() {
		fmt.Printf("    %-10s off=%-10d len=%-10d crc=%08x\n", s.Name, s.Offset, s.Length, s.CRC)
	}
	if !verify {
		fmt.Printf("  checksum: header+table ok (run with -verify for the full pass)\n")
		return nil
	}
	if err := h.Verify(); err != nil {
		fmt.Printf("  checksum: FAIL\n")
		return err
	}
	fmt.Printf("  checksum: ok (footer CRC, %d section CRCs, structural walk)\n", len(h.Sections()))
	return nil
}
