package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func write(t *testing.T, path, content string) {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestCheckFile(t *testing.T) {
	dir := t.TempDir()
	write(t, filepath.Join(dir, "docs", "api.md"), strings.Join([]string{
		"# API reference",
		"",
		"## Batch endpoints",
		"",
		"See the [snapshot spec](snapshot-format.md#layout) and [README](../README.md).",
		"Self link: [above](#batch-endpoints).",
		"External links are skipped: [go](https://go.dev) <- not checked.",
		"```",
		"[this](broken-in-fence.md) is inside a code fence and ignored",
		"```",
	}, "\n"))
	write(t, filepath.Join(dir, "docs", "snapshot-format.md"), "# Snapshot\n\n## Layout\n\nbytes\n")
	write(t, filepath.Join(dir, "README.md"), "# Readme\n\n[api](docs/api.md#batch-endpoints)\n")

	for _, f := range []string{
		filepath.Join(dir, "docs", "api.md"),
		filepath.Join(dir, "README.md"),
	} {
		n, probs, err := checkFile(f)
		if err != nil {
			t.Fatal(err)
		}
		if len(probs) != 0 {
			t.Errorf("%s: unexpected problems: %v", f, probs)
		}
		if n == 0 {
			t.Errorf("%s: no links checked", f)
		}
	}
}

func TestCheckFileCatchesBreakage(t *testing.T) {
	dir := t.TempDir()
	write(t, filepath.Join(dir, "ok.md"), "# Ok\n\n## Real heading\n")
	write(t, filepath.Join(dir, "doc.md"), strings.Join([]string{
		"# Doc",
		"[missing file](nope.md)",
		"[missing anchor](ok.md#no-such-heading)",
		"[bad self anchor](#also-missing)",
		"[fine](ok.md#real-heading)",
	}, "\n"))
	n, probs, err := checkFile(filepath.Join(dir, "doc.md"))
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Errorf("checked = %d, want 4", n)
	}
	if len(probs) != 3 {
		t.Fatalf("problems = %v, want 3", probs)
	}
	for i, want := range []string{"nope.md", "no-such-heading", "also-missing"} {
		if !strings.Contains(probs[i], want) {
			t.Errorf("problem %d = %q, want mention of %q", i, probs[i], want)
		}
	}
}

func TestSlugify(t *testing.T) {
	cases := map[string]string{
		"API reference":             "api-reference",
		"The `Batch` endpoints":     "the-batch-endpoints",
		"Errors, codes & semantics": "errors-codes--semantics",
		"v1 layout":                 "v1-layout",
	}
	for in, want := range cases {
		if got := slugify(in); got != want {
			t.Errorf("slugify(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestCollectMarkdown(t *testing.T) {
	dir := t.TempDir()
	write(t, filepath.Join(dir, "a.md"), "# a\n")
	write(t, filepath.Join(dir, "sub", "b.md"), "# b\n")
	write(t, filepath.Join(dir, "sub", "c.txt"), "not markdown\n")
	files, err := collectMarkdown([]string{dir})
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 2 {
		t.Errorf("files = %v, want the two .md files", files)
	}
}
