// Command linkcheck validates intra-repository links in markdown files: a
// relative link must point at an existing file or directory, and a #fragment
// must name a heading that exists in the target file. External (http, https,
// mailto) links are not fetched — CI must not depend on the network — so the
// checker's scope is exactly the links this repository controls.
//
// Usage:
//
//	linkcheck README.md docs
//
// Directory arguments are scanned recursively for *.md files. Exit status 1
// lists every broken link as file:line: message.
package main

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

func main() {
	args := os.Args[1:]
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "usage: linkcheck <file.md|dir> ...")
		os.Exit(2)
	}
	files, err := collectMarkdown(args)
	if err != nil {
		fmt.Fprintf(os.Stderr, "linkcheck: %v\n", err)
		os.Exit(2)
	}
	if len(files) == 0 {
		fmt.Fprintln(os.Stderr, "linkcheck: no markdown files found")
		os.Exit(2)
	}
	total := 0
	var problems []string
	for _, f := range files {
		n, probs, err := checkFile(f)
		if err != nil {
			fmt.Fprintf(os.Stderr, "linkcheck: %v\n", err)
			os.Exit(2)
		}
		total += n
		problems = append(problems, probs...)
	}
	if len(problems) > 0 {
		for _, p := range problems {
			fmt.Fprintln(os.Stderr, p)
		}
		fmt.Fprintf(os.Stderr, "linkcheck: %d broken link(s) out of %d checked in %d file(s)\n",
			len(problems), total, len(files))
		os.Exit(1)
	}
	fmt.Printf("linkcheck: %d link(s) OK across %d file(s)\n", total, len(files))
}

// collectMarkdown expands the argument list into markdown file paths.
func collectMarkdown(args []string) ([]string, error) {
	var files []string
	for _, a := range args {
		info, err := os.Stat(a)
		if err != nil {
			return nil, err
		}
		if !info.IsDir() {
			files = append(files, a)
			continue
		}
		err = filepath.WalkDir(a, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() && strings.HasSuffix(strings.ToLower(d.Name()), ".md") {
				files = append(files, path)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return files, nil
}

// linkRe matches inline markdown links and images: [text](target). Targets
// with spaces or nested parens are not used in this repository.
var linkRe = regexp.MustCompile(`!?\[[^\]]*\]\(([^)\s]+)\)`)

// checkFile validates every intra-repo link in one markdown file, returning
// the number of links checked and a list of file:line problems.
func checkFile(path string) (int, []string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, nil, err
	}
	lines := strings.Split(string(data), "\n")
	checked := 0
	var problems []string
	inFence := false
	for ln, line := range lines {
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			inFence = !inFence
			continue
		}
		if inFence {
			continue
		}
		for _, m := range linkRe.FindAllStringSubmatch(line, -1) {
			target := m[1]
			if isExternal(target) {
				continue
			}
			checked++
			if msg := checkTarget(path, target); msg != "" {
				problems = append(problems, fmt.Sprintf("%s:%d: %s", path, ln+1, msg))
			}
		}
	}
	return checked, problems, nil
}

func isExternal(target string) bool {
	return strings.Contains(target, "://") ||
		strings.HasPrefix(target, "mailto:") ||
		strings.HasPrefix(target, "tel:")
}

// checkTarget validates one relative link target against the filesystem and,
// for markdown fragments, against the target file's headings. An empty
// return means the link is good.
func checkTarget(fromFile, target string) string {
	file, frag, _ := strings.Cut(target, "#")
	dest := fromFile
	if file != "" {
		dest = filepath.Join(filepath.Dir(fromFile), file)
		info, err := os.Stat(dest)
		if err != nil {
			return fmt.Sprintf("broken link %q: %s does not exist", target, dest)
		}
		if info.IsDir() || frag == "" {
			return ""
		}
	}
	if frag == "" {
		return ""
	}
	if !strings.HasSuffix(strings.ToLower(dest), ".md") {
		// Fragments into non-markdown files (e.g. source line anchors)
		// cannot be validated offline; existence of the file is enough.
		return ""
	}
	anchors, err := headingAnchors(dest)
	if err != nil {
		return fmt.Sprintf("broken link %q: %v", target, err)
	}
	if !anchors[strings.ToLower(frag)] {
		return fmt.Sprintf("broken link %q: no heading for anchor #%s in %s", target, frag, dest)
	}
	return ""
}

// headingAnchors extracts GitHub-style anchor slugs from a markdown file's
// ATX headings (lowercase; spaces become hyphens; everything but letters,
// digits, hyphens and underscores is dropped).
func headingAnchors(path string) (map[string]bool, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	anchors := make(map[string]bool)
	inFence := false
	for _, line := range strings.Split(string(data), "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			inFence = !inFence
			continue
		}
		if inFence || !strings.HasPrefix(line, "#") {
			continue
		}
		text := strings.TrimLeft(line, "#")
		if !strings.HasPrefix(text, " ") {
			// "#foo" without a space or a bare run of hashes is not an ATX
			// heading.
			continue
		}
		anchors[slugify(strings.TrimSpace(text))] = true
	}
	return anchors, nil
}

func slugify(heading string) string {
	heading = strings.ReplaceAll(heading, "`", "")
	var b strings.Builder
	for _, r := range strings.ToLower(heading) {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '-', r == '_':
			b.WriteRune(r)
		case r == ' ':
			b.WriteByte('-')
		}
	}
	return b.String()
}
