// Package mapsynth's root benchmark harness: one testing.B benchmark per
// table/figure of the paper's evaluation (EXPERIMENTS.md maps them), plus
// micro-benchmarks for the hot primitives. Run with:
//
//	go test -bench=. -benchmem
package mapsynth

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"testing"

	"mapsynth/internal/apps"
	"mapsynth/internal/baselines"
	"mapsynth/internal/compat"
	"mapsynth/internal/core"
	"mapsynth/internal/corpusgen"
	"mapsynth/internal/experiments"
	"mapsynth/internal/graph"
	"mapsynth/internal/index"
	"mapsynth/internal/mapping"
	"mapsynth/internal/mapreduce"
	"mapsynth/internal/pool"
	"mapsynth/internal/serve"
	"mapsynth/internal/stats"
	"mapsynth/internal/strmatch"
	"mapsynth/internal/synthesis"
	"mapsynth/internal/table"
)

var (
	envOnce sync.Once
	env     *experiments.Env
)

func sharedEnv() *experiments.Env {
	envOnce.Do(func() {
		env = experiments.NewEnv(experiments.DefaultSeed)
	})
	return env
}

// BenchmarkFigure7_Synthesis regenerates the paper's headline number: the
// full Synthesis pipeline over the web corpus (quality is asserted in the
// experiments tests; here we measure end-to-end cost).
func BenchmarkFigure7_Synthesis(b *testing.B) {
	e := sharedEnv()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := core.New(core.DefaultConfig()).Synthesize(e.Corpus.Tables)
		if len(res.Mappings) == 0 {
			b.Fatal("no mappings")
		}
	}
}

// BenchmarkFigure8 regenerates the runtime comparison: one sub-benchmark per
// method, measuring only the method-specific work over shared artifacts
// (extraction/graph timings are reported by the figure driver itself).
func BenchmarkFigure8(b *testing.B) {
	e := sharedEnv()
	b.Run("Synthesis", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.New(core.DefaultConfig()).Synthesize(e.Corpus.Tables)
		}
	})
	b.Run("SynthesisPos", func(b *testing.B) {
		cfg := core.DefaultConfig()
		cfg.DisableNegativeSignal = true
		for i := 0; i < b.N; i++ {
			core.New(cfg).Synthesize(e.Corpus.Tables)
		}
	})
	b.Run("WikiTable", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			baselines.SingleTables(e.Bins, corpusgen.WikipediaDomain)
		}
	})
	b.Run("WebTable", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			baselines.SingleTables(e.Bins, "")
		}
	})
	b.Run("UnionDomain", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			baselines.UnionDomain(e.Bins)
		}
	})
	b.Run("UnionWeb", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			baselines.UnionWeb(e.Bins)
		}
	})
	b.Run("SchemaCC", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for th := 0.0; th <= 1.0001; th += 0.1 {
				baselines.SchemaCC(e.Graph, th, true)
			}
		}
	})
	b.Run("Correlation", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			baselines.Correlation(e.Graph, 42, 0)
		}
	})
	b.Run("WiseIntegrator", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			baselines.WiseIntegrator(e.Bins)
		}
	})
}

// BenchmarkSynthesizeParallel measures the staged pipeline engine end to end
// at increasing worker-pool widths over the generated web corpus, making the
// speedup from component-parallel partitioning and per-stage fan-out visible
// in the perf trajectory. Output is identical at every width; only the
// wall-clock changes.
func BenchmarkSynthesizeParallel(b *testing.B) {
	e := sharedEnv()
	widths := []int{1, 4}
	if p := runtime.GOMAXPROCS(0); p != 1 && p != 4 {
		widths = append(widths, p)
	}
	for _, w := range widths {
		w := w
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			cfg := core.DefaultConfig()
			cfg.Workers = w
			for i := 0; i < b.N; i++ {
				res, err := core.New(cfg).SynthesizeContext(context.Background(), e.Corpus.Tables)
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Mappings) == 0 {
					b.Fatal("no mappings")
				}
			}
		})
	}
}

// BenchmarkFigure9_Scale regenerates the scalability series: full pipeline
// over sampled corpora.
func BenchmarkFigure9_Scale(b *testing.B) {
	for _, frac := range []float64{0.2, 0.4, 0.6, 0.8, 1.0} {
		frac := frac
		b.Run(fmt.Sprintf("input%.0f%%", frac*100), func(b *testing.B) {
			corpus := corpusgen.GenerateWeb(corpusgen.Options{
				Seed: experiments.DefaultSeed, SampleFraction: frac,
			})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				core.New(core.DefaultConfig()).Synthesize(corpus.Tables)
			}
		})
	}
}

// BenchmarkFigure10_Enterprise regenerates the enterprise pipeline run.
func BenchmarkFigure10_Enterprise(b *testing.B) {
	corpus := corpusgen.GenerateEnterprise(corpusgen.Options{Seed: experiments.DefaultSeed})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.New(core.DefaultConfig()).Synthesize(corpus.Tables)
	}
}

// BenchmarkFigure15_ConflictResolution compares the resolution strategies of
// Section 5.6 (greedy removal vs majority voting vs none).
func BenchmarkFigure15_ConflictResolution(b *testing.B) {
	e := sharedEnv()
	for _, v := range []struct {
		name string
		res  core.ResolutionStrategy
	}{
		{"greedy", core.ResolveGreedy},
		{"majority", core.ResolveMajority},
		{"none", core.ResolveNone},
	} {
		v := v
		b.Run(v.name, func(b *testing.B) {
			cfg := core.DefaultConfig()
			cfg.Resolution = v.res
			for i := 0; i < b.N; i++ {
				core.New(cfg).Synthesize(e.Corpus.Tables)
			}
		})
	}
}

// BenchmarkSensitivityTau regenerates the τ sweep of Section 5.4.
func BenchmarkSensitivityTau(b *testing.B) {
	e := sharedEnv()
	for _, tau := range []float64{-0.05, -0.2, -0.8} {
		tau := tau
		b.Run(fmt.Sprintf("tau%+.2f", tau), func(b *testing.B) {
			cfg := core.DefaultConfig()
			cfg.Tau = tau
			for i := 0; i < b.N; i++ {
				core.New(cfg).Synthesize(e.Corpus.Tables)
			}
		})
	}
}

// BenchmarkPartitioners is the trichotomy ablation (Theorem 13): greedy vs
// exact vs min-cut on small graphs.
func BenchmarkPartitioners(b *testing.B) {
	g := graph.New(10)
	for i := 0; i < 10; i++ {
		for j := i + 1; j < 10; j++ {
			if (i+j)%3 == 0 {
				g.AddEdge(i, j, float64(i+j)/20, 0)
			}
		}
	}
	g.AddEdge(0, 9, 0, -1)
	b.Run("greedy", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			synthesis.Greedy(g, synthesis.DefaultTau)
		}
	})
	b.Run("exact", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			synthesis.Exact(g, synthesis.DefaultTau)
		}
	})
	b.Run("mincut", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, ok := synthesis.MinCutSingleNegative(g, synthesis.DefaultTau); !ok {
				b.Fatal("mincut rejected")
			}
		}
	})
}

// BenchmarkEditDistance compares the banded check (Appendix B) against the
// full dynamic program.
func BenchmarkEditDistance(b *testing.B) {
	a := "korea republic of south korea"
	c := "korea republic of north korea"
	b.Run("banded", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			strmatch.WithinDistance(a, c, 5)
		}
	})
	b.Run("full", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			strmatch.Distance(a, c)
		}
	})
}

// BenchmarkBlocking measures inverted-index pair blocking over the full
// candidate set.
func BenchmarkBlocking(b *testing.B) {
	e := sharedEnv()
	cands := compat.Precompute(e.Bins)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		compat.BlockedPairs(cands, 2)
	}
}

// BenchmarkCompatibilityGraph measures full graph construction (weights +
// blocking), the dominant cost of table synthesis.
func BenchmarkCompatibilityGraph(b *testing.B) {
	e := sharedEnv()
	cands := compat.Precompute(e.Bins)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		compat.BuildGraph(cands, compat.DefaultOptions(), 0)
	}
}

// BenchmarkCoherenceIndex measures co-occurrence index construction.
func BenchmarkCoherenceIndex(b *testing.B) {
	e := sharedEnv()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stats.BuildIndex(e.Corpus.Tables)
	}
}

// BenchmarkHashToMin measures map-reduce connected components against BFS.
func BenchmarkHashToMin(b *testing.B) {
	e := sharedEnv()
	b.Run("hashtomin", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			e.Graph.HashToMinComponents(mapreduce.Config{})
		}
	})
	b.Run("bfs", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			e.Graph.ConnectedComponents()
		}
	})
}

// BenchmarkIndexLookup measures bloom-backed containment lookup (the paper's
// "easy to index and efficient to scale" claim for materialized mappings).
func BenchmarkIndexLookup(b *testing.B) {
	maps := make([]*mapping.Mapping, 0, 200)
	for mi := 0; mi < 200; mi++ {
		pairs := make([]table.Pair, 50)
		ls := make([]string, 50)
		rs := make([]string, 50)
		for i := range pairs {
			ls[i] = fmt.Sprintf("left-%d-%d", mi, i)
			rs[i] = fmt.Sprintf("right-%d-%d", mi, i)
		}
		bt := table.NewBinaryTable(mi, mi, "d", "l", "r", ls, rs)
		maps = append(maps, mapping.Build(mi, []*table.BinaryTable{bt}))
	}
	ix := index.Build(maps)
	query := []string{"left-137-1", "left-137-2", "left-137-3", "left-137-4"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if hits := ix.LookupLeft(query, 0.9); len(hits) != 1 {
			b.Fatalf("hits = %d", len(hits))
		}
	}
}

// serveBenchMappings builds the synthetic mapping set used by the serving
// benchmarks: 200 mappings of 50 pairs each, matching BenchmarkIndexLookup's
// corpus so index and service numbers are comparable.
func serveBenchMappings() []*mapping.Mapping {
	maps := make([]*mapping.Mapping, 0, 200)
	for mi := 0; mi < 200; mi++ {
		ls := make([]string, 50)
		rs := make([]string, 50)
		for i := range ls {
			ls[i] = fmt.Sprintf("left-%d-%d", mi, i)
			rs[i] = fmt.Sprintf("right-%d-%d", mi, i)
		}
		bt := table.NewBinaryTable(mi, mi, "d", "l", "r", ls, rs)
		maps = append(maps, mapping.Build(mi, []*table.BinaryTable{bt}))
	}
	return maps
}

// BenchmarkServeLookup measures the serving hot path end to end — HTTP
// routing, shard fan-out, cache, JSON encoding — for the single-key /lookup
// endpoint. Sub-benchmarks separate the cache-hit path (one hot key) from
// the cache-miss path (cache disabled, every request scans the shards).
func BenchmarkServeLookup(b *testing.B) {
	maps := serveBenchMappings()
	run := func(b *testing.B, cacheSize int, key string) {
		srv := serve.NewFromMappings(maps, serve.Options{Shards: 4, CacheSize: cacheSize})
		h := srv.Handler()
		url := "/lookup?key=" + key
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, url, nil))
			if rec.Code != http.StatusOK {
				b.Fatalf("status = %d", rec.Code)
			}
		}
	}
	b.Run("cached", func(b *testing.B) { run(b, 1024, "left-137-7") })
	b.Run("uncached", func(b *testing.B) { run(b, 0, "left-137-7") })
}

// BenchmarkServeLookupParallel measures concurrent throughput of /lookup —
// the read-only shards and lock-free state pointer should let parallel
// clients scale across cores; only the LRU mutex is shared.
func BenchmarkServeLookupParallel(b *testing.B) {
	maps := serveBenchMappings()
	srv := serve.NewFromMappings(maps, serve.Options{Shards: 4, CacheSize: 1024})
	h := srv.Handler()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			key := fmt.Sprintf("left-%d-%d", i%200, i%50)
			i++
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/lookup?key="+key, nil))
			if rec.Code != http.StatusOK {
				b.Fatalf("status = %d", rec.Code)
			}
		}
	})
}

// BenchmarkServeAutoFill measures the batch /autofill endpoint over the
// sharded index.
func BenchmarkServeAutoFill(b *testing.B) {
	maps := serveBenchMappings()
	srv := serve.NewFromMappings(maps, serve.Options{Shards: 4, CacheSize: 0})
	h := srv.Handler()
	body := []byte(`{"column":["left-42-1","left-42-2","left-42-3","left-42-4"],` +
		`"examples":[{"left":"left-42-1","right":"right-42-1"}],"min_coverage":0.9}`)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec := httptest.NewRecorder()
		req := httptest.NewRequest(http.MethodPost, "/autofill", bytes.NewReader(body))
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
		}
	}
}

// BenchmarkBatchAutoFill measures the bulk-application claim: filling many
// columns through apps.AutoFillBatch (shared pool, deduplicated index
// lookups) versus the same columns through N sequential AutoFill calls.
// The workload is spreadsheet-shaped: 64 column queries over the 200-
// mapping corpus, with each distinct column appearing twice (repeated key
// columns are the norm in sheet fills), so both the parallelism and the
// lookup amortization contribute.
func BenchmarkBatchAutoFill(b *testing.B) {
	maps := serveBenchMappings()
	ix := index.Build(maps)
	var queries []apps.AutoFillQuery
	for q := 0; q < 32; q++ {
		mi := (q * 7) % 200
		col := make([]string, 20)
		for i := range col {
			col[i] = fmt.Sprintf("left-%d-%d", mi, i)
		}
		query := apps.AutoFillQuery{
			Column:      col,
			Examples:    []apps.Example{{Left: col[0], Right: fmt.Sprintf("right-%d-0", mi)}},
			MinCoverage: 0.9,
		}
		queries = append(queries, query, query) // each column twice
	}
	sanity := func(b *testing.B, res []apps.AutoFillResult) {
		if len(res) != len(queries) || res[0].MappingIndex < 0 {
			b.Fatalf("bad batch result: %d entries", len(res))
		}
	}

	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res := make([]apps.AutoFillResult, len(queries))
			for j, q := range queries {
				res[j] = apps.AutoFill(ix, q.Column, q.Examples, q.MinCoverage)
			}
			sanity(b, res)
		}
	})
	b.Run("batch1", func(b *testing.B) { // amortization only, no parallelism
		p := pool.New(1)
		for i := 0; i < b.N; i++ {
			res, err := apps.AutoFillBatch(context.Background(), ix, p, queries)
			if err != nil {
				b.Fatal(err)
			}
			sanity(b, res)
		}
	})
	b.Run("batch", func(b *testing.B) { // amortization + shared pool
		p := pool.New(0)
		for i := 0; i < b.N; i++ {
			res, err := apps.AutoFillBatch(context.Background(), ix, p, queries)
			if err != nil {
				b.Fatal(err)
			}
			sanity(b, res)
		}
	})
}

// BenchmarkServeBatchAutoFill measures the streaming /batch/autofill
// endpoint end to end — NDJSON decode, pooled per-row compute, streamed
// encode — against the cost of the same columns as individual /autofill
// requests (BenchmarkServeAutoFill measures one such request).
func BenchmarkServeBatchAutoFill(b *testing.B) {
	maps := serveBenchMappings()
	srv := serve.NewFromMappings(maps, serve.Options{Shards: 4, CacheSize: 0})
	h := srv.Handler()
	var body bytes.Buffer
	for q := 0; q < 32; q++ {
		mi := (q * 7) % 200
		fmt.Fprintf(&body,
			`{"column":["left-%d-1","left-%d-2","left-%d-3","left-%d-4"],"min_coverage":0.9}`+"\n",
			mi, mi, mi, mi)
	}
	payload := body.Bytes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec := httptest.NewRecorder()
		req := httptest.NewRequest(http.MethodPost, "/batch/autofill", bytes.NewReader(payload))
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
		}
	}
}

// BenchmarkExperimentFigure7 runs the entire 12-method comparison once per
// iteration — the full evaluation harness cost.
func BenchmarkExperimentFigure7(b *testing.B) {
	if testing.Short() {
		b.Skip("full comparison")
	}
	e := sharedEnv()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.Figure7(io.Discard, e, experiments.DefaultSeed)
	}
}
